// Package geo provides the country registry used by the SMS substrate, the
// residential-proxy substrate and the workload generators: ISO codes, dial
// prefixes, regions, and per-country SMS termination pricing.
//
// Termination rates model the A2P (application-to-person) price an
// application owner pays per delivered SMS. SMS-pumping economics hinge on
// the spread between ordinary and high-cost destinations, so rates are
// calibrated to the public shape of A2P price lists: fractions of a cent in
// large competitive markets, several tens of cents in high-cost routes.
package geo

import (
	"fmt"
	"sort"
)

// Region groups countries for reporting.
type Region int

// Regions, in no particular order.
const (
	RegionEurope Region = iota + 1
	RegionCentralAsia
	RegionMiddleEast
	RegionAfrica
	RegionSouthEastAsia
	RegionEastAsia
	RegionSouthAsia
	RegionAmericas
	RegionOceania
)

var regionNames = map[Region]string{
	RegionEurope:        "Europe",
	RegionCentralAsia:   "Central Asia",
	RegionMiddleEast:    "Middle East",
	RegionAfrica:        "Africa",
	RegionSouthEastAsia: "South-East Asia",
	RegionEastAsia:      "East Asia",
	RegionSouthAsia:     "South Asia",
	RegionAmericas:      "Americas",
	RegionOceania:       "Oceania",
}

// String returns the region's display name.
func (r Region) String() string {
	if s, ok := regionNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Country describes one destination market.
type Country struct {
	// Code is the ISO 3166-1 alpha-2 code, e.g. "UZ".
	Code string
	// Name is the English display name.
	Name string
	// DialPrefix is the E.164 country calling code without "+", e.g. "998".
	DialPrefix string
	// Region is the reporting region.
	Region Region
	// TerminationUSD is the ordinary A2P SMS termination price in USD.
	TerminationUSD float64
	// PremiumUSD is the termination price towards premium / high-cost
	// number ranges in this country.
	PremiumUSD float64
	// RevenueShare is the fraction of the termination price a colluding
	// terminating operator kicks back to the fraudster.
	RevenueShare float64
	// MobileDigits is the subscriber-number length after the dial prefix.
	MobileDigits int
}

// HighCost reports whether the country's ordinary termination rate is in the
// expensive band that makes it attractive for artificial traffic inflation.
func (c Country) HighCost() bool { return c.TerminationUSD >= 0.10 }

// Registry is an immutable set of countries indexed by ISO code.
type Registry struct {
	byCode map[string]Country
	codes  []string // sorted for deterministic iteration
	// byPrefix resolves a dial prefix to its country in O(1). Prefixes
	// shared between countries (the NANP "1" for US/CA) resolve to the
	// smallest ISO code so that number attribution is deterministic.
	byPrefix  map[string]Country
	maxPrefix int
}

// NewRegistry builds a registry from the given countries. Duplicate codes
// are rejected so that experiment configs cannot silently shadow each other.
func NewRegistry(countries []Country) (*Registry, error) {
	byCode := make(map[string]Country, len(countries))
	codes := make([]string, 0, len(countries))
	for _, c := range countries {
		if c.Code == "" {
			return nil, fmt.Errorf("geo: country %q has empty code", c.Name)
		}
		if _, dup := byCode[c.Code]; dup {
			return nil, fmt.Errorf("geo: duplicate country code %q", c.Code)
		}
		byCode[c.Code] = c
		codes = append(codes, c.Code)
	}
	sort.Strings(codes)
	// Build the prefix table in sorted-code order so that a shared dial
	// prefix always resolves to the same (smallest) code.
	byPrefix := make(map[string]Country, len(countries))
	maxPrefix := 0
	for _, code := range codes {
		c := byCode[code]
		if _, shared := byPrefix[c.DialPrefix]; !shared {
			byPrefix[c.DialPrefix] = c
		}
		if len(c.DialPrefix) > maxPrefix {
			maxPrefix = len(c.DialPrefix)
		}
	}
	return &Registry{byCode: byCode, codes: codes, byPrefix: byPrefix, maxPrefix: maxPrefix}, nil
}

// Default returns the built-in registry of destination markets. It includes
// every country named in the paper's Table I plus enough additional markets
// to reproduce the 42-country targeting of the Airline D case study.
func Default() *Registry {
	reg, err := NewRegistry(defaultCountries())
	if err != nil {
		// The built-in table is a compile-time constant; a duplicate is a
		// programming error, not a runtime condition.
		panic(err)
	}
	return reg
}

// Lookup returns the country for an ISO code.
func (r *Registry) Lookup(code string) (Country, bool) {
	c, ok := r.byCode[code]
	return c, ok
}

// MustLookup is Lookup for codes the caller knows exist; it panics on a
// missing code to surface misconfigured experiments immediately.
func (r *Registry) MustLookup(code string) Country {
	c, ok := r.byCode[code]
	if !ok {
		panic(fmt.Sprintf("geo: unknown country code %q", code))
	}
	return c
}

// Codes returns all ISO codes in sorted order.
func (r *Registry) Codes() []string {
	out := make([]string, len(r.codes))
	copy(out, r.codes)
	return out
}

// Len returns the number of countries.
func (r *Registry) Len() int { return len(r.codes) }

// All returns the countries in sorted code order.
func (r *Registry) All() []Country {
	out := make([]Country, 0, len(r.codes))
	for _, code := range r.codes {
		out = append(out, r.byCode[code])
	}
	return out
}

// HighCostCodes returns codes of countries in the expensive termination band,
// sorted by descending termination price (ties broken by code).
func (r *Registry) HighCostCodes() []string {
	var out []string
	for _, code := range r.codes {
		if r.byCode[code].HighCost() {
			out = append(out, code)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := r.byCode[out[i]], r.byCode[out[j]]
		if a.TerminationUSD != b.TerminationUSD {
			return a.TerminationUSD > b.TerminationUSD
		}
		return out[i] < out[j]
	})
	return out
}

func defaultCountries() []Country {
	return []Country{
		// Table I countries. Termination pricing gives the six high-cost
		// destinations the economics that made them pump targets.
		{Code: "UZ", Name: "Uzbekistan", DialPrefix: "998", Region: RegionCentralAsia, TerminationUSD: 0.28, PremiumUSD: 0.55, RevenueShare: 0.45, MobileDigits: 9},
		{Code: "IR", Name: "Iran", DialPrefix: "98", Region: RegionMiddleEast, TerminationUSD: 0.24, PremiumUSD: 0.48, RevenueShare: 0.42, MobileDigits: 10},
		{Code: "KG", Name: "Kyrgyzstan", DialPrefix: "996", Region: RegionCentralAsia, TerminationUSD: 0.22, PremiumUSD: 0.44, RevenueShare: 0.40, MobileDigits: 9},
		{Code: "JO", Name: "Jordan", DialPrefix: "962", Region: RegionMiddleEast, TerminationUSD: 0.18, PremiumUSD: 0.36, RevenueShare: 0.38, MobileDigits: 9},
		{Code: "NG", Name: "Nigeria", DialPrefix: "234", Region: RegionAfrica, TerminationUSD: 0.16, PremiumUSD: 0.34, RevenueShare: 0.36, MobileDigits: 10},
		{Code: "KH", Name: "Cambodia", DialPrefix: "855", Region: RegionSouthEastAsia, TerminationUSD: 0.14, PremiumUSD: 0.30, RevenueShare: 0.34, MobileDigits: 9},
		{Code: "SG", Name: "Singapore", DialPrefix: "65", Region: RegionSouthEastAsia, TerminationUSD: 0.035, PremiumUSD: 0.10, RevenueShare: 0.10, MobileDigits: 8},
		{Code: "GB", Name: "United Kingdom", DialPrefix: "44", Region: RegionEurope, TerminationUSD: 0.028, PremiumUSD: 0.09, RevenueShare: 0.08, MobileDigits: 10},
		{Code: "CN", Name: "China", DialPrefix: "86", Region: RegionEastAsia, TerminationUSD: 0.025, PremiumUSD: 0.08, RevenueShare: 0.08, MobileDigits: 11},
		{Code: "TH", Name: "Thailand", DialPrefix: "66", Region: RegionSouthEastAsia, TerminationUSD: 0.020, PremiumUSD: 0.07, RevenueShare: 0.08, MobileDigits: 9},

		// Additional markets (ordinary traffic + pump long tail) to reach
		// the 42-country footprint of case study C.
		{Code: "FR", Name: "France", DialPrefix: "33", Region: RegionEurope, TerminationUSD: 0.045, PremiumUSD: 0.12, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "DE", Name: "Germany", DialPrefix: "49", Region: RegionEurope, TerminationUSD: 0.075, PremiumUSD: 0.15, RevenueShare: 0.05, MobileDigits: 10},
		{Code: "ES", Name: "Spain", DialPrefix: "34", Region: RegionEurope, TerminationUSD: 0.040, PremiumUSD: 0.11, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "IT", Name: "Italy", DialPrefix: "39", Region: RegionEurope, TerminationUSD: 0.055, PremiumUSD: 0.13, RevenueShare: 0.05, MobileDigits: 10},
		{Code: "PT", Name: "Portugal", DialPrefix: "351", Region: RegionEurope, TerminationUSD: 0.038, PremiumUSD: 0.10, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "NL", Name: "Netherlands", DialPrefix: "31", Region: RegionEurope, TerminationUSD: 0.065, PremiumUSD: 0.14, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "BE", Name: "Belgium", DialPrefix: "32", Region: RegionEurope, TerminationUSD: 0.070, PremiumUSD: 0.15, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "CH", Name: "Switzerland", DialPrefix: "41", Region: RegionEurope, TerminationUSD: 0.050, PremiumUSD: 0.12, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "AT", Name: "Austria", DialPrefix: "43", Region: RegionEurope, TerminationUSD: 0.060, PremiumUSD: 0.13, RevenueShare: 0.05, MobileDigits: 10},
		{Code: "SE", Name: "Sweden", DialPrefix: "46", Region: RegionEurope, TerminationUSD: 0.045, PremiumUSD: 0.11, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "NO", Name: "Norway", DialPrefix: "47", Region: RegionEurope, TerminationUSD: 0.048, PremiumUSD: 0.11, RevenueShare: 0.05, MobileDigits: 8},
		{Code: "PL", Name: "Poland", DialPrefix: "48", Region: RegionEurope, TerminationUSD: 0.032, PremiumUSD: 0.09, RevenueShare: 0.06, MobileDigits: 9},
		{Code: "GR", Name: "Greece", DialPrefix: "30", Region: RegionEurope, TerminationUSD: 0.042, PremiumUSD: 0.11, RevenueShare: 0.06, MobileDigits: 10},
		{Code: "TR", Name: "Turkey", DialPrefix: "90", Region: RegionMiddleEast, TerminationUSD: 0.015, PremiumUSD: 0.06, RevenueShare: 0.10, MobileDigits: 10},
		{Code: "AE", Name: "United Arab Emirates", DialPrefix: "971", Region: RegionMiddleEast, TerminationUSD: 0.038, PremiumUSD: 0.12, RevenueShare: 0.12, MobileDigits: 9},
		{Code: "SA", Name: "Saudi Arabia", DialPrefix: "966", Region: RegionMiddleEast, TerminationUSD: 0.036, PremiumUSD: 0.11, RevenueShare: 0.12, MobileDigits: 9},
		{Code: "IQ", Name: "Iraq", DialPrefix: "964", Region: RegionMiddleEast, TerminationUSD: 0.12, PremiumUSD: 0.26, RevenueShare: 0.30, MobileDigits: 10},
		{Code: "LB", Name: "Lebanon", DialPrefix: "961", Region: RegionMiddleEast, TerminationUSD: 0.11, PremiumUSD: 0.24, RevenueShare: 0.28, MobileDigits: 8},
		{Code: "YE", Name: "Yemen", DialPrefix: "967", Region: RegionMiddleEast, TerminationUSD: 0.13, PremiumUSD: 0.28, RevenueShare: 0.32, MobileDigits: 9},
		{Code: "TJ", Name: "Tajikistan", DialPrefix: "992", Region: RegionCentralAsia, TerminationUSD: 0.20, PremiumUSD: 0.42, RevenueShare: 0.38, MobileDigits: 9},
		{Code: "TM", Name: "Turkmenistan", DialPrefix: "993", Region: RegionCentralAsia, TerminationUSD: 0.19, PremiumUSD: 0.40, RevenueShare: 0.36, MobileDigits: 8},
		{Code: "KZ", Name: "Kazakhstan", DialPrefix: "7", Region: RegionCentralAsia, TerminationUSD: 0.085, PremiumUSD: 0.20, RevenueShare: 0.20, MobileDigits: 10},
		{Code: "AZ", Name: "Azerbaijan", DialPrefix: "994", Region: RegionCentralAsia, TerminationUSD: 0.15, PremiumUSD: 0.32, RevenueShare: 0.30, MobileDigits: 9},
		{Code: "PK", Name: "Pakistan", DialPrefix: "92", Region: RegionSouthAsia, TerminationUSD: 0.095, PremiumUSD: 0.22, RevenueShare: 0.25, MobileDigits: 10},
		{Code: "BD", Name: "Bangladesh", DialPrefix: "880", Region: RegionSouthAsia, TerminationUSD: 0.105, PremiumUSD: 0.24, RevenueShare: 0.26, MobileDigits: 10},
		{Code: "LK", Name: "Sri Lanka", DialPrefix: "94", Region: RegionSouthAsia, TerminationUSD: 0.090, PremiumUSD: 0.21, RevenueShare: 0.24, MobileDigits: 9},
		{Code: "IN", Name: "India", DialPrefix: "91", Region: RegionSouthAsia, TerminationUSD: 0.012, PremiumUSD: 0.05, RevenueShare: 0.08, MobileDigits: 10},
		{Code: "ID", Name: "Indonesia", DialPrefix: "62", Region: RegionSouthEastAsia, TerminationUSD: 0.068, PremiumUSD: 0.16, RevenueShare: 0.15, MobileDigits: 10},
		{Code: "MY", Name: "Malaysia", DialPrefix: "60", Region: RegionSouthEastAsia, TerminationUSD: 0.030, PremiumUSD: 0.09, RevenueShare: 0.10, MobileDigits: 9},
		{Code: "PH", Name: "Philippines", DialPrefix: "63", Region: RegionSouthEastAsia, TerminationUSD: 0.058, PremiumUSD: 0.14, RevenueShare: 0.14, MobileDigits: 10},
		{Code: "VN", Name: "Vietnam", DialPrefix: "84", Region: RegionSouthEastAsia, TerminationUSD: 0.062, PremiumUSD: 0.15, RevenueShare: 0.14, MobileDigits: 9},
		{Code: "MM", Name: "Myanmar", DialPrefix: "95", Region: RegionSouthEastAsia, TerminationUSD: 0.115, PremiumUSD: 0.25, RevenueShare: 0.28, MobileDigits: 9},
		{Code: "LA", Name: "Laos", DialPrefix: "856", Region: RegionSouthEastAsia, TerminationUSD: 0.12, PremiumUSD: 0.26, RevenueShare: 0.28, MobileDigits: 9},
		{Code: "JP", Name: "Japan", DialPrefix: "81", Region: RegionEastAsia, TerminationUSD: 0.070, PremiumUSD: 0.16, RevenueShare: 0.05, MobileDigits: 10},
		{Code: "KR", Name: "South Korea", DialPrefix: "82", Region: RegionEastAsia, TerminationUSD: 0.022, PremiumUSD: 0.07, RevenueShare: 0.05, MobileDigits: 10},
		{Code: "HK", Name: "Hong Kong", DialPrefix: "852", Region: RegionEastAsia, TerminationUSD: 0.045, PremiumUSD: 0.11, RevenueShare: 0.08, MobileDigits: 8},
		{Code: "TW", Name: "Taiwan", DialPrefix: "886", Region: RegionEastAsia, TerminationUSD: 0.052, PremiumUSD: 0.12, RevenueShare: 0.08, MobileDigits: 9},
		{Code: "EG", Name: "Egypt", DialPrefix: "20", Region: RegionAfrica, TerminationUSD: 0.098, PremiumUSD: 0.22, RevenueShare: 0.22, MobileDigits: 10},
		{Code: "KE", Name: "Kenya", DialPrefix: "254", Region: RegionAfrica, TerminationUSD: 0.088, PremiumUSD: 0.20, RevenueShare: 0.22, MobileDigits: 9},
		{Code: "GH", Name: "Ghana", DialPrefix: "233", Region: RegionAfrica, TerminationUSD: 0.092, PremiumUSD: 0.21, RevenueShare: 0.24, MobileDigits: 9},
		{Code: "ZA", Name: "South Africa", DialPrefix: "27", Region: RegionAfrica, TerminationUSD: 0.026, PremiumUSD: 0.08, RevenueShare: 0.10, MobileDigits: 9},
		{Code: "TN", Name: "Tunisia", DialPrefix: "216", Region: RegionAfrica, TerminationUSD: 0.105, PremiumUSD: 0.23, RevenueShare: 0.25, MobileDigits: 8},
		{Code: "MA", Name: "Morocco", DialPrefix: "212", Region: RegionAfrica, TerminationUSD: 0.082, PremiumUSD: 0.19, RevenueShare: 0.20, MobileDigits: 9},
		{Code: "SN", Name: "Senegal", DialPrefix: "221", Region: RegionAfrica, TerminationUSD: 0.110, PremiumUSD: 0.24, RevenueShare: 0.26, MobileDigits: 9},
		{Code: "US", Name: "United States", DialPrefix: "1", Region: RegionAmericas, TerminationUSD: 0.0075, PremiumUSD: 0.04, RevenueShare: 0.03, MobileDigits: 10},
		{Code: "CA", Name: "Canada", DialPrefix: "1", Region: RegionAmericas, TerminationUSD: 0.0080, PremiumUSD: 0.04, RevenueShare: 0.03, MobileDigits: 10},
		{Code: "BR", Name: "Brazil", DialPrefix: "55", Region: RegionAmericas, TerminationUSD: 0.030, PremiumUSD: 0.09, RevenueShare: 0.08, MobileDigits: 11},
		{Code: "MX", Name: "Mexico", DialPrefix: "52", Region: RegionAmericas, TerminationUSD: 0.028, PremiumUSD: 0.09, RevenueShare: 0.08, MobileDigits: 10},
		{Code: "AR", Name: "Argentina", DialPrefix: "54", Region: RegionAmericas, TerminationUSD: 0.055, PremiumUSD: 0.13, RevenueShare: 0.10, MobileDigits: 10},
		{Code: "AU", Name: "Australia", DialPrefix: "61", Region: RegionOceania, TerminationUSD: 0.035, PremiumUSD: 0.10, RevenueShare: 0.05, MobileDigits: 9},
		{Code: "NZ", Name: "New Zealand", DialPrefix: "64", Region: RegionOceania, TerminationUSD: 0.095, PremiumUSD: 0.21, RevenueShare: 0.08, MobileDigits: 9},
	}
}
