package workload

import (
	"errors"
	"math"
	"testing"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/geo"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

var t0 = time.Date(2022, time.May, 2, 0, 0, 0, 0, time.UTC)

// recordingAPI implements the app interfaces, recording traffic.
type recordingAPI struct {
	clock   *simclock.Manual
	maxNiP  int
	nips    []int
	holds   int
	confirm int
	otps    int
	bps     []geo.MSISDN
	gets    int
	cookies map[string]bool
	id      uint64
}

func (r *recordingAPI) RequestHold(ctx app.ClientContext, req booking.HoldRequest) (*booking.Hold, error) {
	r.cookies[ctx.Cookie] = true
	if r.maxNiP > 0 && len(req.Passengers) > r.maxNiP {
		return nil, booking.ErrNiPCapExceeded
	}
	r.holds++
	r.nips = append(r.nips, len(req.Passengers))
	r.id++
	return &booking.Hold{ID: booking.HoldID(r.id), NiP: len(req.Passengers)}, nil
}

func (r *recordingAPI) Confirm(app.ClientContext, booking.HoldID) (booking.Ticket, error) {
	r.confirm++
	return booking.Ticket{RecordLocator: "LOCAT" + string(rune('A'+r.confirm%26))}, nil
}

func (r *recordingAPI) Availability(app.ClientContext, booking.FlightID) (booking.Availability, error) {
	return booking.Availability{}, nil
}

func (r *recordingAPI) RequestOTP(ctx app.ClientContext, to geo.MSISDN, login string) error {
	r.otps++
	return nil
}

func (r *recordingAPI) SendBoardingPass(ctx app.ClientContext, locator string, to geo.MSISDN) error {
	r.bps = append(r.bps, to)
	return nil
}

func (r *recordingAPI) Get(app.ClientContext, string) (int, error) {
	r.gets++
	return 200, nil
}

func run(t *testing.T, cfg Config, horizon time.Duration, maxNiP int) (*recordingAPI, *Population) {
	t.Helper()
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := &recordingAPI{clock: clock, maxNiP: maxNiP, cookies: make(map[string]bool)}
	pop := NewPopulation(cfg, api, api, api, sched, simrand.New(1), geo.Default())
	pop.Start()
	if err := sched.RunFor(horizon); err != nil {
		t.Fatal(err)
	}
	return api, pop
}

func flights() []booking.FlightID { return []booking.FlightID{"F1", "F2", "F3"} }

func TestPopulationNiPMixMatchesFig1Baseline(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(4*24*time.Hour))
	cfg.HoldsPerHour = 120
	api, _ := run(t, cfg, 4*24*time.Hour, 0)
	if api.holds < 3000 {
		t.Fatalf("only %d holds generated", api.holds)
	}
	counts := make([]int, 10)
	for _, nip := range api.nips {
		if nip >= 1 && nip <= 9 {
			counts[nip]++
		}
	}
	total := float64(api.holds)
	for i, want := range DefaultNiPWeights {
		got := float64(counts[i+1]) / total
		if math.Abs(got-want) > 0.03 {
			t.Errorf("NiP %d share %.3f, want ~%.3f", i+1, got, want)
		}
	}
}

func TestPopulationDiurnalPattern(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(48*time.Hour))
	cfg.HoldsPerHour = 200
	cfg.OTPPerHour = 0
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := &recordingAPI{clock: clock, cookies: make(map[string]bool)}
	pop := NewPopulation(cfg, api, nil, nil, sched, simrand.New(2), geo.Default())
	pop.Start()

	// Count holds in a night window vs a day window.
	if err := sched.RunUntil(t0.Add(5 * time.Hour)); err != nil { // 00:00-05:00
		t.Fatal(err)
	}
	night := api.holds
	if err := sched.RunUntil(t0.Add(10 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	preDay := api.holds
	if err := sched.RunUntil(t0.Add(15 * time.Hour)); err != nil { // 10:00-15:00
		t.Fatal(err)
	}
	day := api.holds - preDay
	if night*3 > day {
		t.Fatalf("night holds %d vs day holds %d, want strong diurnal shape", night, day)
	}
}

func TestPopulationConfirmShare(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(3*24*time.Hour))
	cfg.HoldsPerHour = 100
	cfg.ConfirmProb = 0.5
	api, pop := run(t, cfg, 3*24*time.Hour+time.Hour, 0)
	share := float64(api.confirm) / float64(api.holds)
	if math.Abs(share-0.5) > 0.05 {
		t.Fatalf("confirm share %.3f, want ~0.5", share)
	}
	if pop.Confirms() != api.confirm {
		t.Fatalf("Confirms() = %d, api saw %d", pop.Confirms(), api.confirm)
	}
}

func TestPopulationBoardingPassesGoToHomeCountry(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(2*24*time.Hour))
	cfg.HoldsPerHour = 80
	cfg.BoardingPassProb = 1.0
	cfg.ConfirmProb = 1.0
	cfg.TailMarketShare = 0
	api, _ := run(t, cfg, 3*24*time.Hour, 0)
	if len(api.bps) < 100 {
		t.Fatalf("only %d boarding passes", len(api.bps))
	}
	reg := geo.Default()
	markets := map[string]bool{}
	for _, m := range defaultMarkets {
		markets[m] = true
	}
	for _, to := range api.bps {
		c, ok := reg.CountryOf(to)
		if !ok {
			t.Fatalf("unresolvable number %s", to)
		}
		// NANP numbers ("1" prefix) are ambiguous between US and CA; accept
		// either resolution.
		if !markets[c.Code] && c.DialPrefix != "1" {
			t.Fatalf("boarding pass sent to non-market country %s", c.Code)
		}
	}
}

func TestPopulationTailMarkets(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(3*24*time.Hour))
	cfg.HoldsPerHour = 100
	cfg.BoardingPassProb = 1.0
	cfg.ConfirmProb = 1.0
	cfg.TailMarketShare = 0.5 // exaggerate for the test
	api, _ := run(t, cfg, 4*24*time.Hour, 0)
	reg := geo.Default()
	tail := 0
	markets := map[string]bool{}
	for _, m := range defaultMarkets {
		markets[m] = true
	}
	for _, to := range api.bps {
		c, _ := reg.CountryOf(to)
		if !markets[c.Code] {
			tail++
			if c.HighCost() {
				t.Fatalf("tail market %s is a high-cost destination", c.Code)
			}
		}
	}
	if tail == 0 {
		t.Fatal("no tail-market traffic at 50% tail share")
	}
}

func TestPopulationAdaptsToNiPCap(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(2*24*time.Hour))
	cfg.HoldsPerHour = 120
	api, pop := run(t, cfg, 2*24*time.Hour, 4)
	// Groups larger than 4 rebook at 4; nothing above the cap reaches the
	// books, and friction stays zero because clients adapt.
	for _, nip := range api.nips {
		if nip > 4 {
			t.Fatalf("hold with NiP %d accepted past cap", nip)
		}
	}
	if pop.Friction() != 0 {
		t.Fatalf("friction %d; group clients should adapt, not fail", pop.Friction())
	}
	capped := 0
	for _, nip := range api.nips {
		if nip == 4 {
			capped++
		}
	}
	baseline4 := DefaultNiPWeights[3]
	share4 := float64(capped) / float64(len(api.nips))
	if share4 < baseline4+0.02 {
		t.Fatalf("NiP4 share %.3f did not absorb larger groups (baseline %.3f)", share4, baseline4)
	}
}

func TestPopulationFrictionCountsRejections(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := &rejectingAPI{}
	cfg := DefaultConfig(flights(), t0.Add(24*time.Hour))
	cfg.HoldsPerHour = 50
	pop := NewPopulation(cfg, api, nil, nil, sched, simrand.New(3), geo.Default())
	pop.Start()
	if err := sched.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if pop.Friction() == 0 {
		t.Fatal("no friction recorded against an all-rejecting defence")
	}
	if pop.Holds() != 0 {
		t.Fatal("holds succeeded against an all-rejecting defence")
	}
}

type rejectingAPI struct{}

func (rejectingAPI) RequestHold(app.ClientContext, booking.HoldRequest) (*booking.Hold, error) {
	return nil, errors.New("rejected")
}

func (rejectingAPI) Confirm(app.ClientContext, booking.HoldID) (booking.Ticket, error) {
	return booking.Ticket{}, errors.New("rejected")
}

func (rejectingAPI) Availability(app.ClientContext, booking.FlightID) (booking.Availability, error) {
	return booking.Availability{}, errors.New("rejected")
}

func TestPopulationDistinctUsersPresentCookies(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(24*time.Hour))
	cfg.HoldsPerHour = 60
	api, _ := run(t, cfg, 24*time.Hour, 0)
	if len(api.cookies) < 100 {
		t.Fatalf("only %d distinct cookies", len(api.cookies))
	}
	if api.cookies[""] {
		t.Fatal("human traffic sent cookieless requests")
	}
}

func TestPopulationOTPVolume(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(2*24*time.Hour))
	cfg.HoldsPerHour = 10
	cfg.OTPPerHour = 100
	api, pop := run(t, cfg, 2*24*time.Hour, 0)
	if api.otps < 2000 {
		t.Fatalf("otps = %d, want ~3600 over two days with diurnal dip", api.otps)
	}
	if pop.OTPs() != api.otps {
		t.Fatalf("OTPs() = %d vs %d", pop.OTPs(), api.otps)
	}
}

func TestPopulationStopsAtHorizon(t *testing.T) {
	cfg := DefaultConfig(flights(), t0.Add(12*time.Hour))
	cfg.HoldsPerHour = 60
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := &recordingAPI{clock: clock, cookies: make(map[string]bool)}
	pop := NewPopulation(cfg, api, api, api, sched, simrand.New(4), geo.Default())
	pop.Start()
	if err := sched.RunFor(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	at12 := api.holds
	if err := sched.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if api.holds != at12 {
		t.Fatalf("holds kept arriving after horizon: %d -> %d", at12, api.holds)
	}
}
