// Package workload generates the legitimate-user traffic the attacks hide
// in: booking journeys whose Number-in-Party mix matches the paper's
// "average week" baseline (Fig. 1), diurnal arrival rates, and the organic
// SMS traffic (OTP logins, own-number boarding passes) that forms the
// baseline for the Table I surge computation.
package workload

import (
	"errors"
	"strconv"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/fingerprint"
	"funabuse/internal/geo"
	"funabuse/internal/names"
	"funabuse/internal/proxy"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
	"funabuse/internal/weblog"
)

// DefaultNiPWeights is the Fig. 1 "average week" party-size mix: bookings
// are dominated by singles and couples, with a thin tail of groups.
// Index i is the weight of party size i+1; sizes 7..9 share the last mass.
var DefaultNiPWeights = []float64{0.52, 0.30, 0.08, 0.05, 0.02, 0.015, 0.008, 0.004, 0.003}

// Market weights approximate where the simulated airline's customers live,
// matching the ordinary-traffic countries of Table I plus core markets.
var defaultMarkets = []string{"GB", "FR", "DE", "ES", "IT", "SG", "CN", "TH", "US", "AU"}
var defaultMarketWeights = []float64{0.16, 0.14, 0.12, 0.09, 0.08, 0.09, 0.10, 0.08, 0.09, 0.05}

// Config parameterises the legitimate population.
type Config struct {
	// HoldsPerHour is the mean rate of booking journeys at daytime peak.
	HoldsPerHour float64
	// NiPWeights overrides the party-size mix (index i = size i+1).
	NiPWeights []float64
	// ConfirmProb is the share of holds that complete payment.
	ConfirmProb float64
	// BoardingPassProb is the share of confirmed tickets whose holder
	// requests the boarding pass by SMS (to their own number).
	BoardingPassProb float64
	// OTPPerHour is the mean rate of OTP login requests at daytime peak.
	OTPPerHour float64
	// TailMarketShare is the probability a visitor's home market is drawn
	// uniformly from the registry's ordinary-rate countries instead of the
	// core markets. It gives long-tail destinations the small-but-nonzero
	// SMS baselines the Table I surge ratios are computed against.
	// High-cost destinations are excluded: the paper notes the pumped
	// countries had "no significant correlation" with the airline's
	// market, i.e. essentially no organic traffic.
	TailMarketShare float64
	// Flights is the flight set journeys book on.
	Flights []booking.FlightID
	// Until stops traffic generation.
	Until time.Time
}

// DefaultConfig returns an Airline-A-scale population.
func DefaultConfig(flights []booking.FlightID, until time.Time) Config {
	return Config{
		HoldsPerHour:     80,
		NiPWeights:       DefaultNiPWeights,
		ConfirmProb:      0.55,
		BoardingPassProb: 0.35,
		OTPPerHour:       40,
		TailMarketShare:  0.03,
		Flights:          flights,
		Until:            until,
	}
}

// Population drives legitimate traffic through the application APIs.
type Population struct {
	cfg   Config
	resv  app.ReservationAPI
	smsa  app.SMSAPI
	brws  app.BrowseAPI
	sched *simclock.Scheduler
	rng   *simrand.RNG

	registry  *geo.Registry
	fpGen     *fingerprint.Generator
	idGen     *names.Generator
	nipChoice *simrand.Categorical
	market    *simrand.Categorical
	tailCodes []string
	pools     map[string]*proxy.Pool

	userSeq  int
	holds    int
	confirms int
	otps     int
	bpSends  int
	friction int // legitimate requests rejected by defences
}

// NewPopulation builds the generator. Any of the API surfaces may be nil if
// the scenario does not exercise them.
func NewPopulation(
	cfg Config,
	resv app.ReservationAPI,
	smsAPI app.SMSAPI,
	browse app.BrowseAPI,
	sched *simclock.Scheduler,
	rng *simrand.RNG,
	registry *geo.Registry,
) *Population {
	if len(cfg.NiPWeights) == 0 {
		cfg.NiPWeights = DefaultNiPWeights
	}
	if cfg.HoldsPerHour <= 0 {
		cfg.HoldsPerHour = 80
	}
	var tailCodes []string
	for _, c := range registry.All() {
		if !c.HighCost() {
			tailCodes = append(tailCodes, c.Code)
		}
	}
	return &Population{
		cfg:       cfg,
		resv:      resv,
		smsa:      smsAPI,
		brws:      browse,
		sched:     sched,
		rng:       rng,
		registry:  registry,
		fpGen:     fingerprint.NewGenerator(rng.Derive("fp")),
		idGen:     names.NewGenerator(rng.Derive("id")),
		nipChoice: simrand.NewCategorical(cfg.NiPWeights),
		market:    simrand.NewCategorical(defaultMarketWeights),
		tailCodes: tailCodes,
		pools:     make(map[string]*proxy.Pool),
	}
}

// Holds returns successful legitimate holds.
func (p *Population) Holds() int { return p.holds }

// Confirms returns completed purchases.
func (p *Population) Confirms() int { return p.confirms }

// OTPs returns delivered OTP messages.
func (p *Population) OTPs() int { return p.otps }

// BoardingPasses returns delivered boarding-pass messages.
func (p *Population) BoardingPasses() int { return p.bpSends }

// Friction returns legitimate requests rejected by the defence stack — the
// usability cost the paper's Section V weighs.
func (p *Population) Friction() int { return p.friction }

// Start schedules hourly arrival batches until cfg.Until.
func (p *Population) Start() {
	p.scheduleHour(p.sched.Now())
}

// diurnal scales the peak rate by hour of day: quiet nights, busy days.
func diurnal(hour int) float64 {
	switch {
	case hour < 6:
		return 0.15
	case hour < 9:
		return 0.7
	case hour < 18:
		return 1.0
	case hour < 22:
		return 0.8
	default:
		return 0.3
	}
}

func (p *Population) scheduleHour(hourStart time.Time) {
	if !hourStart.Before(p.cfg.Until) {
		return
	}
	if p.resv != nil {
		n := p.rng.Poisson(p.cfg.HoldsPerHour * diurnal(hourStart.Hour()))
		for range n {
			offset := time.Duration(p.rng.Float64() * float64(time.Hour))
			p.sched.Schedule(hourStart.Add(offset), p.journey)
		}
	}
	if p.smsa != nil && p.cfg.OTPPerHour > 0 {
		n := p.rng.Poisson(p.cfg.OTPPerHour * diurnal(hourStart.Hour()))
		for range n {
			offset := time.Duration(p.rng.Float64() * float64(time.Hour))
			p.sched.Schedule(hourStart.Add(offset), p.otpLogin)
		}
	}
	p.sched.Schedule(hourStart.Add(time.Hour), func(now time.Time) {
		p.scheduleHour(now)
	})
}

// user materialises one visitor: identity, device, home market, address.
type user struct {
	ctx     app.ClientContext
	country geo.Country
	phone   geo.MSISDN
}

func (p *Population) newUser() user {
	p.userSeq++
	var code string
	if p.rng.Bool(p.cfg.TailMarketShare) {
		code = simrand.Pick(p.rng, p.tailCodes)
	} else {
		code = defaultMarkets[p.market.Draw(p.rng)]
	}
	country := p.registry.MustLookup(code)
	pool, ok := p.pools[code]
	if !ok {
		pool = proxy.NewPool(p.rng.Derive("isp-"+code), code, 4096)
		p.pools[code] = pool
	}
	// One id string serves as client key, cookie and ground-truth actor id;
	// building it once keeps user creation at a single id allocation.
	seq := strconv.Itoa(p.userSeq)
	id := "user-" + seq
	return user{
		ctx: app.ClientContext{
			IP:          pool.Draw(),
			Fingerprint: p.fpGen.Organic(),
			ClientKey:   id,
			Cookie:      id,
			Actor:       weblog.ActorHuman,
			ActorID:     id,
		},
		country: country,
		phone:   geo.PlanFor(country).Random(p.rng.Derive("phone-" + seq)),
	}
}

// journey is one browse→hold(→confirm→boarding pass) flow.
func (p *Population) journey(now time.Time) {
	if !now.Before(p.cfg.Until) || len(p.cfg.Flights) == 0 {
		return
	}
	u := p.newUser()
	if p.brws != nil {
		// A couple of browse hits before booking.
		for i := range 2 + p.rng.Intn(4) {
			at := now.Add(time.Duration(i*15+p.rng.Intn(20)) * time.Second)
			p.sched.Schedule(at, func(time.Time) {
				_, _ = p.brws.Get(u.ctx, "/search/results/page"+strconv.Itoa(p.rng.Intn(5)))
			})
		}
	}
	nip := p.nipChoice.Draw(p.rng) + 1
	flight := simrand.Pick(p.rng, p.cfg.Flights)
	holdAt := now.Add(time.Duration(60+p.rng.Intn(180)) * time.Second)
	p.sched.Schedule(holdAt, func(at time.Time) {
		if !at.Before(p.cfg.Until) {
			return
		}
		party := make([]names.Identity, nip)
		for i := range party {
			party[i] = p.idGen.Realistic()
		}
		hold, err := p.resv.RequestHold(u.ctx, booking.HoldRequest{
			Flight:     flight,
			Passengers: party,
			ActorID:    u.ctx.ClientKey,
		})
		// Legitimate group bookings adapt to a party-size cap by splitting:
		// the lead rebooks at the largest admitted size (the Fig. 1 rise in
		// four-passenger reservations after the mitigation).
		for errors.Is(err, booking.ErrNiPCapExceeded) && len(party) > 1 {
			party = party[:len(party)-1]
			hold, err = p.resv.RequestHold(u.ctx, booking.HoldRequest{
				Flight:     flight,
				Passengers: party,
				ActorID:    u.ctx.ClientKey,
			})
		}
		if err != nil {
			p.friction++
			return
		}
		p.holds++
		if !p.rng.Bool(p.cfg.ConfirmProb) {
			return // abandoned cart; the hold expires naturally
		}
		confirmAt := at.Add(time.Duration(2+p.rng.Intn(10)) * time.Minute)
		p.sched.Schedule(confirmAt, func(time.Time) {
			ticket, err := p.resv.Confirm(u.ctx, hold.ID)
			if err != nil {
				p.friction++
				return
			}
			p.confirms++
			if p.smsa != nil && p.rng.Bool(p.cfg.BoardingPassProb) {
				bpAt := confirmAt.Add(time.Duration(1+p.rng.Intn(12)) * time.Hour)
				p.sched.Schedule(bpAt, func(time.Time) {
					if err := p.smsa.SendBoardingPass(u.ctx, ticket.RecordLocator, u.phone); err != nil {
						p.friction++
						return
					}
					p.bpSends++
				})
			}
		})
	})
}

// otpLogin is one OTP-protected login from a legitimate user.
func (p *Population) otpLogin(now time.Time) {
	if !now.Before(p.cfg.Until) {
		return
	}
	u := p.newUser()
	if err := p.smsa.RequestOTP(u.ctx, u.phone, u.ctx.ClientKey); err != nil {
		p.friction++
		return
	}
	p.otps++
}
