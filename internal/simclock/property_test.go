package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

// TestSchedulerFiresInTimeOrderProperty: for any random schedule of events,
// callbacks observe non-decreasing virtual time and the clock never runs
// ahead of the firing event.
func TestSchedulerFiresInTimeOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler(NewManual(epoch))
		var fired []time.Time
		for _, off := range offsets {
			at := epoch.Add(time.Duration(off) * time.Second)
			s.Schedule(at, func(now time.Time) {
				fired = append(fired, now)
			})
		}
		if err := s.Drain(0); err != nil {
			return false
		}
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerReschedulingFromCallbacksProperty: callbacks that schedule
// more work never fire anything in the past, and Drain terminates when the
// re-scheduling chain is bounded.
func TestSchedulerReschedulingFromCallbacksProperty(t *testing.T) {
	f := func(depths []uint8) bool {
		s := NewScheduler(NewManual(epoch))
		fired := 0
		var chain func(remaining int) func(time.Time)
		chain = func(remaining int) func(time.Time) {
			return func(now time.Time) {
				fired++
				if now.Before(s.Now()) {
					t.Fatal("fired in the past")
				}
				if remaining > 0 {
					s.ScheduleAfter(time.Second, chain(remaining-1))
				}
			}
		}
		want := 0
		for _, d := range depths {
			n := int(d % 8)
			want += n + 1
			s.ScheduleAfter(time.Second, chain(n))
		}
		if err := s.Drain(0); err != nil {
			return false
		}
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelledEventsNeverFireProperty: a random subset of cancellations is
// honoured exactly.
func TestCancelledEventsNeverFireProperty(t *testing.T) {
	f := func(offsets []uint8, cancelMask uint64) bool {
		s := NewScheduler(NewManual(epoch))
		firedIdx := map[int]bool{}
		events := make([]*Event, len(offsets))
		for i, off := range offsets {
			i := i
			events[i] = s.Schedule(epoch.Add(time.Duration(off)*time.Second), func(time.Time) {
				firedIdx[i] = true
			})
		}
		cancelled := map[int]bool{}
		for i := range events {
			if cancelMask&(1<<(uint(i)%64)) != 0 {
				events[i].Cancel()
				cancelled[i] = true
			}
		}
		if err := s.Drain(0); err != nil {
			return false
		}
		for i := range events {
			if cancelled[i] && firedIdx[i] {
				return false
			}
			if !cancelled[i] && !firedIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
