package simclock

import (
	"testing"
	"time"
)

var epoch = time.Date(2022, time.May, 2, 0, 0, 0, 0, time.UTC)

func TestManualAdvance(t *testing.T) {
	c := NewManual(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	c.Advance(90 * time.Minute)
	want := epoch.Add(90 * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("after Advance Now() = %v, want %v", got, want)
	}
}

func TestManualAdvanceNegativeIgnored(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("negative Advance moved clock to %v", got)
	}
}

func TestManualSetAtRejectsPast(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(time.Hour)
	if c.SetAt(epoch) {
		t.Fatal("SetAt accepted a past instant")
	}
	if !c.SetAt(epoch.Add(2 * time.Hour)) {
		t.Fatal("SetAt rejected a future instant")
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	var r Real
	a := r.Now()
	b := r.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestSchedulerFiresInOrder(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	var order []int
	s.Schedule(epoch.Add(3*time.Second), func(time.Time) { order = append(order, 3) })
	s.Schedule(epoch.Add(1*time.Second), func(time.Time) { order = append(order, 1) })
	s.Schedule(epoch.Add(2*time.Second), func(time.Time) { order = append(order, 2) })
	if err := s.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	at := epoch.Add(time.Minute)
	var order []int
	for i := range 5 {
		s.Schedule(at, func(time.Time) { order = append(order, i) })
	}
	if err := s.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestSchedulerPastEventFiresNow(t *testing.T) {
	clock := NewManual(epoch)
	s := NewScheduler(clock)
	clock.Advance(time.Hour)
	var fired time.Time
	s.Schedule(epoch, func(now time.Time) { fired = now })
	s.Step()
	if !fired.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("past event fired at %v, want current instant", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	fired := false
	e := s.ScheduleAfter(time.Second, func(time.Time) { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel returned false on pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := s.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerRunUntilLeavesClockAtDeadline(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	s.ScheduleAfter(10*time.Hour, func(time.Time) {})
	deadline := epoch.Add(time.Hour)
	if err := s.RunUntil(deadline); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := s.Now(); !got.Equal(deadline) {
		t.Fatalf("clock at %v, want deadline %v", got, deadline)
	}
	if s.Fired() != 0 {
		t.Fatalf("event past deadline fired")
	}
}

func TestSchedulerRunForFiresDue(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	count := 0
	for i := 1; i <= 10; i++ {
		s.ScheduleAfter(time.Duration(i)*time.Minute, func(time.Time) { count++ })
	}
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 5 {
		t.Fatalf("fired %d events, want 5", count)
	}
}

func TestTickerPeriodicAndStop(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	var stamps []time.Time
	tk := s.ScheduleEvery(time.Minute, func(now time.Time) {
		stamps = append(stamps, now)
	})
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	tk.Stop()
	if err := s.RunFor(5 * time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if len(stamps) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(stamps))
	}
	for i, ts := range stamps {
		want := epoch.Add(time.Duration(i+1) * time.Minute)
		if !ts.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
	if tk.Ticks() != 5 {
		t.Fatalf("Ticks() = %d, want 5", tk.Ticks())
	}
}

func TestTickerSelfStopInsideCallback(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	var tk *Ticker
	n := 0
	tk = s.ScheduleEvery(time.Second, func(time.Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if err := s.Drain(100); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n != 3 {
		t.Fatalf("ticker fired %d times after self-stop, want 3", n)
	}
}

func TestSchedulerDrainBound(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	var rearm func(time.Time)
	rearm = func(time.Time) { s.ScheduleAfter(time.Second, rearm) }
	s.ScheduleAfter(time.Second, rearm)
	if err := s.Drain(50); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s.Fired() != 50 {
		t.Fatalf("Fired() = %d, want 50", s.Fired())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	s.ScheduleAfter(time.Second, func(time.Time) { s.Stop() })
	s.ScheduleAfter(2*time.Second, func(time.Time) { t.Fatal("event after Stop fired") })
	if err := s.Drain(0); err != ErrStopped {
		t.Fatalf("Drain error = %v, want ErrStopped", err)
	}
}

func TestSchedulerLenExcludesCancelled(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	e1 := s.ScheduleAfter(time.Second, func(time.Time) {})
	s.ScheduleAfter(2*time.Second, func(time.Time) {})
	e1.Cancel()
	if got := s.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
}

func TestEventAt(t *testing.T) {
	s := NewScheduler(NewManual(epoch))
	e := s.ScheduleAfter(time.Hour, func(time.Time) {})
	if !e.At().Equal(epoch.Add(time.Hour)) {
		t.Fatalf("At() = %v", e.At())
	}
}
