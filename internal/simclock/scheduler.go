package simclock

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Scheduler.Run when the scheduler was stopped
// before the run condition was met.
var ErrStopped = errors.New("simclock: scheduler stopped")

// Event is a scheduled callback. Events are created by the Scheduler and can
// be cancelled until they fire.
type Event struct {
	at       time.Time
	seq      uint64
	fn       func(now time.Time)
	index    int // heap index, -1 once removed
	canceled bool
}

// At returns the virtual instant the event is scheduled for.
func (e *Event) At() time.Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the cancellation
// took effect.
func (e *Event) Cancel() bool {
	if e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

// Scheduler is a deterministic discrete-event executor over a Manual clock.
// Events scheduled for the same instant fire in scheduling order (FIFO by
// sequence number), which keeps simulations reproducible.
//
// Scheduler is not safe for concurrent use: the simulation model is
// single-threaded virtual time. Concurrency in the simulated world is
// expressed as interleaved events, not goroutines.
type Scheduler struct {
	clock   *Manual
	queue   eventQueue
	nextSeq uint64
	stopped bool
	fired   uint64
}

// NewScheduler returns a Scheduler driving the given Manual clock.
func NewScheduler(clock *Manual) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the Manual clock the scheduler drives.
func (s *Scheduler) Clock() *Manual { return s.clock }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.clock.Now() }

// Len returns the number of pending (non-cancelled) events.
func (s *Scheduler) Len() int {
	n := 0
	for _, e := range s.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Fired returns the number of events that have fired so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Schedule registers fn to run at instant at. Events scheduled in the past
// fire at the current instant instead (time never moves backwards).
func (s *Scheduler) Schedule(at time.Time, fn func(now time.Time)) *Event {
	if now := s.clock.Now(); at.Before(now) {
		at = now
	}
	e := &Event{at: at, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleAfter registers fn to run d after the current instant.
func (s *Scheduler) ScheduleAfter(d time.Duration, fn func(now time.Time)) *Event {
	return s.Schedule(s.clock.Now().Add(d), fn)
}

// ScheduleEvery registers fn to run every interval, starting one interval
// from now, until the returned Ticker is stopped or the scheduler drains.
func (s *Scheduler) ScheduleEvery(interval time.Duration, fn func(now time.Time)) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{sched: s, interval: interval, fn: fn}
	t.arm()
	return t
}

// Step fires the single earliest pending event, advancing the clock to its
// instant. It reports whether an event fired.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		e, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return false
		}
		e.index = -1
		if e.canceled {
			continue
		}
		s.clock.SetAt(e.at)
		s.fired++
		e.fn(e.at)
		return true
	}
	return false
}

// RunUntil fires events in order until the queue drains or the next event
// is after deadline. The clock is left at deadline if it was reached, or at
// the last fired event otherwise.
func (s *Scheduler) RunUntil(deadline time.Time) error {
	for {
		if s.stopped {
			return ErrStopped
		}
		e := s.peek()
		if e == nil || e.at.After(deadline) {
			s.clock.SetAt(deadline)
			return nil
		}
		s.Step()
	}
}

// RunFor is RunUntil with a relative horizon.
func (s *Scheduler) RunFor(d time.Duration) error {
	return s.RunUntil(s.clock.Now().Add(d))
}

// Drain fires all pending events. maxEvents bounds runaway self-rescheduling
// workloads; pass 0 for no bound.
func (s *Scheduler) Drain(maxEvents uint64) error {
	var n uint64
	for s.Step() {
		if s.stopped {
			return ErrStopped
		}
		n++
		if maxEvents > 0 && n >= maxEvents {
			return nil
		}
	}
	return nil
}

// Stop marks the scheduler stopped; the current Run call returns ErrStopped.
func (s *Scheduler) Stop() { s.stopped = true }

func (s *Scheduler) peek() *Event {
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.queue)
		e.index = -1
	}
	return nil
}

// Ticker re-arms a periodic event until stopped.
type Ticker struct {
	sched    *Scheduler
	interval time.Duration
	fn       func(now time.Time)
	ev       *Event
	stopped  bool
	ticks    uint64
}

// Ticks returns how many times the ticker has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Stop prevents future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

func (t *Ticker) arm() {
	t.ev = t.sched.ScheduleAfter(t.interval, func(now time.Time) {
		if t.stopped {
			return
		}
		t.ticks++
		t.fn(now)
		if !t.stopped {
			t.arm()
		}
	})
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
