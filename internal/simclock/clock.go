// Package simclock provides virtual time for deterministic simulation.
//
// Every component in the framework reads time through the Clock interface.
// Production deployments can pass a real clock; simulations and tests pass a
// Manual clock driven by the event Scheduler, letting a simulated week of
// traffic replay in milliseconds with fully reproducible timestamps.
package simclock

import (
	"sync"
	"time"
)

// Clock supplies the current instant. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// Manual is a Clock whose time only moves when explicitly advanced.
// The zero value is not ready for use; construct with NewManual.
type Manual struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock initialised to start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the clock's current instant.
func (m *Manual) Now() time.Time {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.now
}

// Advance moves the clock forward by d and returns the new instant.
// Negative durations are ignored: simulated time never runs backwards.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d > 0 {
		m.now = m.now.Add(d)
	}
	return m.now
}

// SetAt moves the clock to t if t is not before the current instant.
// It reports whether the clock moved.
func (m *Manual) SetAt(t time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.Before(m.now) {
		return false
	}
	m.now = t
	return true
}
