// Package simclock provides virtual time for deterministic simulation.
//
// Every component in the framework reads time through the Clock interface.
// Production deployments can pass a real clock; simulations and tests pass a
// Manual clock driven by the event Scheduler, letting a simulated week of
// traffic replay in milliseconds with fully reproducible timestamps.
package simclock

import (
	"sync/atomic"
	"time"
)

// Clock supplies the current instant. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// Manual is a Clock whose time only moves when explicitly advanced.
// The zero value is not ready for use; construct with NewManual.
//
// Internally the instant is the construction epoch plus an atomically
// updated nanosecond offset: Now is a single atomic load on the hottest
// read path of the whole simulator (every scheduled event and every
// substrate reads it), and concurrent replicate workers never contend on
// a lock they each own privately anyway.
type Manual struct {
	epoch time.Time    // immutable after NewManual
	nanos atomic.Int64 // offset from epoch
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock initialised to start.
func NewManual(start time.Time) *Manual {
	return &Manual{epoch: start}
}

// Now returns the clock's current instant.
func (m *Manual) Now() time.Time {
	return m.epoch.Add(time.Duration(m.nanos.Load()))
}

// Advance moves the clock forward by d and returns the new instant.
// Negative durations are ignored: simulated time never runs backwards.
func (m *Manual) Advance(d time.Duration) time.Time {
	if d <= 0 {
		return m.Now()
	}
	return m.epoch.Add(time.Duration(m.nanos.Add(int64(d))))
}

// SetAt moves the clock to t if t is not before the current instant.
// It reports whether the clock moved.
func (m *Manual) SetAt(t time.Time) bool {
	target := t.Sub(m.epoch)
	for {
		cur := m.nanos.Load()
		if int64(target) < cur {
			return false
		}
		if m.nanos.CompareAndSwap(cur, int64(target)) {
			return true
		}
	}
}
