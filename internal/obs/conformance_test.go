package obs_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"funabuse/internal/cluster"
	"funabuse/internal/detect"
	"funabuse/internal/entitygraph"
	"funabuse/internal/httpgate"
	"funabuse/internal/obs"
	"funabuse/internal/resilience"
	"funabuse/internal/signal"
	"funabuse/internal/simclock"
	"funabuse/internal/weblog"
)

var confT0 = time.Date(2022, time.December, 1, 0, 0, 0, 0, time.UTC)

// TestCollectorConformance is the table-driven contract test for the
// obs.Collector adapters that replaced the four bespoke snapshot APIs
// (httpgate.LayerStats, signal engine totals, resilience breaker state,
// detect stream alert counters). Every collector must:
//
//  1. emit at least one sample;
//  2. use valid Prometheus metric and label names;
//  3. emit no duplicate series (name+labels);
//  4. emit only finite values;
//  5. be deterministic: two collects of a quiesced source are identical;
//  6. append to dst without touching existing elements.
func TestCollectorConformance(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) obs.Collector
	}{
		{
			name: "httpgate.Gate",
			build: func(t *testing.T) obs.Collector {
				g := httpgate.New(httpgate.Config{
					PathLimit:  10,
					PathWindow: time.Hour,
				}, httpgate.WithClock(simclock.NewManual(confT0)),
					httpgate.WithResilience(httpgate.ResilienceConfig{}))
				h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
				r := httptest.NewRequest(http.MethodGet, "/checkout", nil)
				r.RemoteAddr = "203.0.113.1:999"
				h.ServeHTTP(httptest.NewRecorder(), r)
				return g.Collector()
			},
		},
		{
			name: "signal.Engine",
			build: func(t *testing.T) obs.Collector {
				e := signal.NewEngine(signal.EngineConfig{Shards: 2})
				e.Observe("SG", confT0)
				e.ObserveAttr("TH", "1.2.3.4", confT0.Add(time.Minute))
				return e.Collector("country")
			},
		},
		{
			name: "resilience.Breaker",
			build: func(t *testing.T) obs.Collector {
				b := resilience.NewBreaker(resilience.BreakerConfig{MinSamples: 1})
				b.Record(confT0, true)
				b.Record(confT0, false) // trips: 1 sample, 50% >= default rate
				return b.Collector("blocklist")
			},
		},
		{
			name: "detect.StreamMonitor",
			build: func(t *testing.T) obs.Collector {
				m := detect.NewStreamMonitor(detect.StreamConfig{
					RateThreshold: 2,
					MaxAlerts:     1,
				})
				for i := 0; i < 3; i++ {
					m.Observe(weblog.Request{
						Time: confT0.Add(time.Duration(i) * time.Second),
						IP:   "9.9.9.9", Cookie: "c1",
					})
				}
				return m.Collector()
			},
		},
		{
			name: "entitygraph.Graph",
			build: func(t *testing.T) obs.Collector {
				g := entitygraph.New(entitygraph.Config{})
				g.Observe([]string{"fp:a", "ip:1", "bk:r1"}, 0.5)
				g.Observe([]string{"fp:b", "ip:1"}, 0.5)
				return g.Collector()
			},
		},
		{
			name: "obs.TraceRing",
			build: func(t *testing.T) obs.Collector {
				ring := obs.NewTraceRing(4)
				ring.Record(obs.Span{Path: "/p", Verdict: obs.VerdictAdmit})
				return ring.Collector()
			},
		},
		{
			name: "cluster.Cluster",
			build: func(t *testing.T) obs.Collector {
				manual := simclock.NewManual(confT0)
				c := cluster.New(cluster.Config{
					Nodes:          2,
					Clock:          manual,
					Gossip:         time.Second,
					ReplicateRules: true,
					ReplicateState: true,
					RuleThreshold:  2,
					RuleWindow:     time.Minute,
				})
				h := c.Handler()
				for range 3 {
					manual.Advance(200 * time.Millisecond)
					r := httptest.NewRequest(http.MethodGet, "/booking/hold", nil)
					r.Header.Set(httpgate.FingerprintHeader, "beef")
					r.RemoteAddr = "203.0.113.9:999"
					h.ServeHTTP(httptest.NewRecorder(), r)
				}
				return c.Collector()
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build(t)

			sentinel := obs.Sample{Name: "sentinel_total", Value: 42}
			first := c.Collect([]obs.Sample{sentinel})
			if len(first) < 2 {
				t.Fatal("collector emitted no samples")
			}
			if !reflect.DeepEqual(first[0], sentinel) {
				t.Fatalf("collector disturbed dst[0]: %+v", first[0])
			}
			first = first[1:]

			seen := make(map[string]bool, len(first))
			for _, s := range first {
				if !obs.ValidName(s.Name) {
					t.Errorf("invalid metric name %q", s.Name)
				}
				for _, l := range s.Labels {
					if !obs.ValidLabelName(l.Name) {
						t.Errorf("invalid label name %q on %s", l.Name, s.Name)
					}
				}
				id := sampleID(s)
				if seen[id] {
					t.Errorf("duplicate series %s", id)
				}
				seen[id] = true
				if s.Value != s.Value || s.Value > 1e18 || s.Value < -1e18 {
					t.Errorf("non-finite or absurd value %v for %s", s.Value, s.Name)
				}
			}

			second := c.Collect(nil)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("quiesced collector not deterministic:\nfirst  %+v\nsecond %+v", first, second)
			}
		})
	}
}

func sampleID(s obs.Sample) string {
	id := s.Name
	for _, l := range s.Labels {
		id += "|" + l.Name + "=" + l.Value
	}
	return id
}

// TestFleetGatesShareOneRegistry drives N node-labelled gates on one
// registry while scraping it concurrently — the cluster telemetry shape.
// The race detector polices the concurrent phase; afterwards the quiesced
// registry must hold no duplicate series and scrape deterministically.
func TestFleetGatesShareOneRegistry(t *testing.T) {
	const nodes = 4
	reg := obs.NewRegistry()
	gates := make([]*httpgate.Gate, nodes)
	for i := range gates {
		gates[i] = httpgate.New(httpgate.Config{
			PathLimit:  3,
			PathWindow: time.Hour,
		}, httpgate.WithClock(simclock.NewManual(confT0)),
			httpgate.WithTelemetry(reg),
			httpgate.WithTelemetryLabels(obs.Label{Name: "node", Value: strconv.Itoa(i)}))
	}

	var wg sync.WaitGroup
	for i, g := range gates {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
			for j := range 8 {
				r := httptest.NewRequest(http.MethodGet, "/checkout", nil)
				r.RemoteAddr = fmt.Sprintf("203.0.113.%d:%d", i+1, 1000+j)
				h.ServeHTTP(httptest.NewRecorder(), r)
			}
		}()
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for range 10 {
			reg.Gather()
		}
	}()
	wg.Wait()
	<-scrapeDone

	first := reg.Gather()
	seen := make(map[string]bool, len(first))
	perNode := make(map[string]float64, nodes)
	for _, s := range first {
		id := sampleID(s)
		if seen[id] {
			t.Fatalf("duplicate series %s", id)
		}
		seen[id] = true
		if s.Name == httpgate.MetricAdmitted {
			for _, l := range s.Labels {
				if l.Name == "node" {
					perNode[l.Value] = s.Value
				}
			}
		}
	}
	if len(perNode) != nodes {
		t.Fatalf("admitted series for %d nodes, want %d: %v", len(perNode), nodes, perNode)
	}
	for n, v := range perNode {
		if v != 3 {
			t.Fatalf("node %s admitted %v, want 3 (path limit)", n, v)
		}
	}
	if second := reg.Gather(); !reflect.DeepEqual(first, second) {
		t.Fatal("quiesced registry scrape not deterministic")
	}
}

// TestCollectorsComposeOnOneRegistry scrapes all four subsystem
// collectors through a single registry — the unified surface the ISSUE
// asks for — and requires the whole exposition to parse.
func TestCollectorsComposeOnOneRegistry(t *testing.T) {
	reg := obs.NewRegistry()

	e := signal.NewEngine(signal.EngineConfig{})
	e.Observe("SG", confT0)
	reg.Register(e.Collector("country"))

	b := resilience.NewBreaker(resilience.BreakerConfig{})
	b.Record(confT0, true)
	reg.Register(b.Collector("journal"))

	m := detect.NewStreamMonitor(detect.StreamConfig{RateThreshold: 100})
	m.Observe(weblog.Request{Time: confT0, IP: "1.1.1.1", Cookie: "c"})
	reg.Register(m.Collector())

	g := httpgate.New(httpgate.Config{PathLimit: 5, PathWindow: time.Hour},
		httpgate.WithClock(simclock.NewManual(confT0)),
		httpgate.WithTelemetry(reg))

	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	r := httptest.NewRequest(http.MethodGet, "/checkout", nil)
	r.RemoteAddr = "203.0.113.1:999"
	h.ServeHTTP(httptest.NewRecorder(), r)

	srv := httptest.NewServer(obs.NewMux(obs.ServeConfig{Registry: reg}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("combined exposition unparseable: %v", err)
	}
	want := map[string]bool{
		"signal_engine_observed_total": false,
		"breaker_state":                false,
		"stream_observed_total":        false,
		"gate_admitted_total":          false,
		"gate_decision_seconds_count":  false,
	}
	for _, s := range samples {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("metric %s missing from combined scrape", name)
		}
	}
}
