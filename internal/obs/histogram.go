package obs

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds, tuned for request
// latencies in seconds (the Prometheus convention).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram counts observations into fixed upper-bound buckets. Observe
// is lock-free: a binary search over the (immutable) bounds, one atomic
// bucket increment, and a CAS loop folding the value into the sum — no
// allocations, safe for hot paths. Exposition follows the Prometheus
// histogram convention: cumulative name_bucket{le=...} series plus
// name_sum and name_count.
type Histogram struct {
	bounds []float64 // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	// les holds the pre-rendered le label values, bounds plus "+Inf".
	les []string
}

// newHistogram builds a histogram with the given bounds (nil selects
// DefBuckets). Bounds are sorted and deduplicated.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bs = uniq
	h := &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
		les:    make([]string, len(bs)+1),
	}
	for i, b := range bs {
		h.les[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	h.les[len(bs)] = "+Inf"
	return h
}

// ObserveN folds n identical observations into the histogram with one
// bucket add and one sum CAS — the batch-decision path records a shared
// latency once per round instead of once per request.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(n)
	add := v * float64(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v float64) {
	// Smallest bound >= v; all values above the last bound land in +Inf.
	// Inlined binary search: sort.SearchFloat64s routes every probe
	// through a func value, an indirection worth removing from a path
	// that runs once per gate decision.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// collect appends the histogram's exposition samples: cumulative buckets
// in le order, then sum and count.
func (h *Histogram) collect(name string, labels []Label, dst []Sample) []Sample {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, Label{Name: "le", Value: h.les[i]})
		dst = append(dst, Sample{Name: name + "_bucket", Labels: ls, Value: float64(cum)})
	}
	dst = append(dst, Sample{Name: name + "_sum", Labels: labels, Value: h.Sum()})
	dst = append(dst, Sample{Name: name + "_count", Labels: labels, Value: float64(cum)})
	return dst
}
