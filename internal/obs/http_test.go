package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMuxMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mux_total").Add(9)
	srv := httptest.NewServer(NewMux(ServeConfig{Registry: reg}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	samples, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics unparseable: %v\n%s", err, body)
	}
	if got := sampleByID(t, samples, "mux_total").Value; got != 9 {
		t.Fatalf("mux_total = %v, want 9", got)
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestMuxHealthError(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeConfig{
		Health: func() error { return errors.New("breaker open") },
	}))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "breaker open") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestMuxTraces(t *testing.T) {
	ring := NewTraceRing(8)
	for i := 0; i < 5; i++ {
		ring.Record(Span{Path: "/checkout", Verdict: VerdictAdmit})
	}
	ring.Record(Span{Path: "/checkout", Verdict: "blocklist"})
	srv := httptest.NewServer(NewMux(ServeConfig{Traces: ring}))
	defer srv.Close()

	code, body := get(t, srv, "/debug/traces?n=2")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	var out struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("traces not JSON: %v\n%s", err, body)
	}
	if out.Total != 6 || len(out.Spans) != 2 {
		t.Fatalf("total %d spans %d, want 6/2", out.Total, len(out.Spans))
	}
	if out.Spans[1].Verdict != "blocklist" {
		t.Fatalf("newest span verdict %q", out.Spans[1].Verdict)
	}
}

func TestMuxTracesDisabled(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeConfig{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/traces"); code != http.StatusNotFound {
		t.Fatalf("/debug/traces without a ring = %d, want 404", code)
	}
}

func TestMuxPprofIndex(t *testing.T) {
	srv := httptest.NewServer(NewMux(ServeConfig{}))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
