package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's current samples in the
// Prometheus text exposition format (version 0.0.4): optional # HELP and
// # TYPE lines per family, then one sample line per series. The output is
// deterministic for a quiesced system — families sorted by name, series
// in emission order — so repeated scrapes of an idle simulation are
// byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()

	// Group samples by family so histogram expansions (_bucket/_sum/
	// _count) stay under one TYPE line.
	type row struct {
		s      Sample
		family string
	}
	rows := make([]row, len(samples))
	for i, s := range samples {
		rows[i] = row{s: s, family: r.familyFor(s.Name)}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].family < rows[j].family })

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for i, rw := range rows {
		if i == 0 || rw.family != lastFamily {
			lastFamily = rw.family
			if help := r.helpFor(rw.family); help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", rw.family, escapeHelp(help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", rw.family, r.kindFor(rw.family))
		}
		bw.WriteString(metricID(rw.s.Name, rw.s.Labels))
		bw.WriteByte(' ')
		bw.WriteString(formatValue(rw.s.Value))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// familyFor maps a sample name to its exposition family: histogram
// expansion suffixes fold back onto the registered histogram family;
// every other name is its own family.
func (r *Registry) familyFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && base != "" {
			if r.families[base] == KindHistogram {
				return base
			}
		}
	}
	return name
}

// kindFor reports the family kind the registry will expose for a family
// name; families contributed only by external Collectors are untyped.
func (r *Registry) kindFor(family string) Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.families[family]
}

// formatValue renders a sample value in the shortest exact form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a help string for the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
