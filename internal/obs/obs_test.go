package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func sampleByID(t *testing.T, samples []Sample, id string) Sample {
	t.Helper()
	for _, s := range samples {
		if metricID(s.Name, s.Labels) == id {
			return s
		}
	}
	t.Fatalf("no sample %q in %d samples", id, len(samples))
	return Sample{}
}

func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", Label{"layer", "path"})
	c.Inc()
	c.Add(4)
	g := r.Gauge("temp")
	g.Set(2.5)
	g.Add(-1)

	samples := r.Gather()
	if got := sampleByID(t, samples, `reqs_total{layer="path"}`).Value; got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
	if got := sampleByID(t, samples, "temp").Value; got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", Label{"k", "v"})
	b := r.Counter("c_total", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("c_total", Label{"k", "w"})
	if a == other {
		t.Fatal("different labels shared one counter")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter family did not panic")
		}
	}()
	r.Gauge("m", Label{"k", "v"})
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name accepted")
		}
	}()
	r.Counter("bad name")
}

func TestCounterFuncReadsAtGather(t *testing.T) {
	r := NewRegistry()
	v := 0.0
	r.CounterFunc("fn_total", func() float64 { return v })
	v = 7
	if got := sampleByID(t, r.Gather(), "fn_total").Value; got != 7 {
		t.Fatalf("fn counter = %v, want 7", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum = %v, want 5.605", h.Sum())
	}
	samples := r.Gather()
	wantBuckets := map[string]float64{
		`lat_seconds_bucket{le="0.01"}`: 1,
		`lat_seconds_bucket{le="0.1"}`:  3,
		`lat_seconds_bucket{le="1"}`:    4,
		`lat_seconds_bucket{le="+Inf"}`: 5,
	}
	for id, want := range wantBuckets {
		if got := sampleByID(t, samples, id).Value; got != want {
			t.Errorf("%s = %v, want %v", id, got, want)
		}
	}
	if got := sampleByID(t, samples, "lat_seconds_count").Value; got != 5 {
		t.Errorf("count sample = %v, want 5", got)
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is inclusive
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation landed in bucket %v", h.counts)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("par_total")
	h := r.Histogram("par_seconds", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
				r.Gauge("par_gauge").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestWriteAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", Label{"layer", `we"ird\va|ue`}).Add(3)
	r.Gauge("rt_gauge").Set(-2.25)
	r.Histogram("rt_seconds", []float64{0.5}).Observe(0.25)
	r.Help("rt_total", "round trip counter")
	r.Register(CollectorFunc(func(dst []Sample) []Sample {
		return append(dst, Sample{Name: "external_metric", Value: 11})
	}))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	if got := sampleByID(t, parsed, metricID("rt_total", []Label{{"layer", `we"ird\va|ue`}})).Value; got != 3 {
		t.Fatalf("rt_total = %v, want 3", got)
	}
	if got := sampleByID(t, parsed, "external_metric").Value; got != 11 {
		t.Fatalf("external_metric = %v, want 11", got)
	}
	if !strings.Contains(b.String(), "# TYPE rt_seconds histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "# HELP rt_total round trip counter") {
		t.Fatalf("missing HELP line:\n%s", b.String())
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Gauge("z_last").Set(1)
		r.Counter("a_first_total").Add(2)
		r.Histogram("mid_seconds", []float64{1, 2}).Observe(1.5)
		var b strings.Builder
		r.WritePrometheus(&b)
		return b.String()
	}
	if build() != build() {
		t.Fatal("two identical registries rendered differently")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		`m{unterminated="v 1` + "\n",
		"m 1 2 3\n",
		"1leading_digit 2\n",
		"# TYPE m zebra\n",
	}
	for _, in := range bad {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText accepted %q", in)
		}
	}
}
