package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// ServeConfig assembles the live observability surface.
type ServeConfig struct {
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *Registry
	// Traces backs /debug/traces; nil disables the route (404).
	Traces *TraceRing
	// Health, when non-nil, is consulted by /healthz: a non-nil error
	// reports 503 with the error text. Nil means always healthy.
	Health func() error
}

// NewMux returns the serving mux for a running defence pipeline:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness (200 ok / 503 with the health error)
//	/debug/traces  the decision-trace journal as JSON, newest last
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Mount it on its own listener (cmd/fraudsim -serve) or under an
// operator-only route of an existing server.
func NewMux(cfg ServeConfig) *http.ServeMux {
	mux := http.NewServeMux()

	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	if cfg.Traces != nil {
		traces := cfg.Traces
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			spans := traces.Snapshot()
			// ?n=K keeps only the newest K spans.
			if nStr := r.URL.Query().Get("n"); nStr != "" {
				if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
					spans = spans[len(spans)-n:]
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Total uint64 `json:"total"`
				Spans []Span `json:"spans"`
			}{Total: traces.Total(), Spans: spans})
		})
	}

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
