package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text-exposition output back into samples —
// the strict reader the golden and smoke tests scrape /metrics through,
// so an unparseable line is a test failure, not a silent skip. Comment
// lines (# HELP, # TYPE) are validated and discarded; every other
// non-blank line must be `name{labels} value`.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// checkComment validates a # HELP / # TYPE line.
func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !ValidName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !ValidName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
	default:
		return fmt.Errorf("unknown comment keyword in %q", line)
	}
	return nil
}

// parseSampleLine parses `name value` or `name{l1="v1",l2="v2"} value`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unclosed label set in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !ValidName(name) {
		return s, fmt.Errorf("invalid metric name %q", name)
	}
	s.Name = name
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	// A timestamp after the value is legal in the format; reject it here —
	// the registry never emits one, so its presence is a corruption signal.
	if strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(in string) ([]Label, error) {
	var labels []Label
	rest := in
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value")
		}
		name := rest[:eq]
		if !ValidLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		rest = rest[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c", rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value")
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
		rest = strings.TrimPrefix(rest, ",")
	}
	return labels, nil
}
