// Package obs is the zero-dependency telemetry subsystem for the defence
// pipeline: an atomic metric registry (counters, gauges, fixed-bucket
// histograms), Prometheus text-format exposition, and a bounded
// ring-buffer decision-trace journal.
//
// The paper's operational lesson is that functional abuse is caught by
// operators *watching* path-level rates, surge tables and rule-rotation
// telemetry — not by any single detector. Every defence package therefore
// exposes its state through one contract:
//
//   - hot paths update pre-resolved handles (Counter.Inc, Gauge.Set,
//     Histogram.Observe) — single atomic operations, no locks, no
//     allocations;
//   - snapshot state that already lives in a package's own atomics is
//     exported lazily through a Collector, read only at scrape time;
//   - a Registry gathers both into a flat []Sample and renders the
//     Prometheus text format for /metrics.
//
// The registry is the one place metric names exist, so the exposition is
// stable: Gather sorts families by name and preserves each family's
// emission order, making scrape output byte-deterministic for a quiesced
// (virtual-time) simulation.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair qualifying a metric.
type Label struct {
	Name, Value string
}

// Sample is one scrape-time reading: a metric name, its labels in
// emission order, and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Kind classifies a metric family for exposition TYPE lines.
type Kind uint8

// Metric family kinds.
const (
	KindUntyped Kind = iota
	KindCounter
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Collector is the one snapshot contract every defence package exposes:
// Collect appends the collector's current samples to dst and returns it.
// Implementations must be safe for concurrent use with the package's hot
// path, must not retain dst, and must emit samples in a deterministic
// order so scrapes of a quiesced system are stable.
//
// httpgate.(*Gate).Collector, signal.(*Engine).Collector,
// resilience.(*Breaker).Collector and detect.(*StreamMonitor).Collector
// all return values of this type; see the conformance test in this
// package for the exact contract.
type Collector interface {
	Collect(dst []Sample) []Sample
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(dst []Sample) []Sample

// Collect implements Collector.
func (f CollectorFunc) Collect(dst []Sample) []Sample { return f(dst) }

// Value takes one snapshot of c and returns the value of the first sample
// matching name whose labels include every given label. ok is false when
// no sample matches. It is the point-read convenience over the Collector
// contract for tests and control loops that need a single reading rather
// than a full scrape.
func Value(c Collector, name string, labels ...Label) (value float64, ok bool) {
	for _, s := range c.Collect(nil) {
		if s.Name != name || !labelsInclude(s.Labels, labels) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}

// labelsInclude reports whether have contains every label in want.
func labelsInclude(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use; handles obtained from a Registry are shared by identity, so two
// Counter calls with the same name and labels return the same counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
// The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// entry is one registered metric: an owned handle or a read-at-scrape
// function.
type entry struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry owns metric handles and gathers external Collectors. Handle
// lookup (Counter, Gauge, Histogram) takes the registry lock and is meant
// for construction time; the returned handles are lock-free and are what
// hot paths hold. Registry is safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	entries    []*entry
	byID       map[string]*entry
	families   map[string]Kind
	help       map[string]string
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:     make(map[string]*entry),
		families: make(map[string]Kind),
		help:     make(map[string]string),
	}
}

// Counter returns the counter registered under name and labels, creating
// it on first use. It panics on an invalid name or a kind conflict with
// an existing family — registration errors are programmer errors.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e := r.lookup(name, KindCounter, labels)
	return e.counter
}

// Gauge returns the gauge registered under name and labels, creating it
// on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e := r.lookup(name, KindGauge, labels)
	return e.gauge
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use with the given bucket upper bounds (nil
// selects DefBuckets). Buckets are fixed at creation; a later call with
// different buckets returns the existing histogram unchanged.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := metricID(name, labels)
	if e, ok := r.byID[id]; ok {
		if e.kind != KindHistogram {
			panic(fmt.Sprintf("obs: metric %s re-registered as histogram, was %s", id, e.kind))
		}
		return e.hist
	}
	r.checkFamilyLocked(name, KindHistogram)
	e := &entry{name: name, labels: labels, kind: KindHistogram, hist: newHistogram(buckets)}
	r.addLocked(id, e)
	return e.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the adapter for state a package already counts on its own
// atomics. fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	r.registerFunc(name, KindCounter, fn, labels)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.registerFunc(name, KindGauge, fn, labels)
}

func (r *Registry) registerFunc(name string, kind Kind, fn func() float64, labels []Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := metricID(name, labels)
	if _, ok := r.byID[id]; ok {
		panic(fmt.Sprintf("obs: metric %s already registered", id))
	}
	r.checkFamilyLocked(name, kind)
	r.addLocked(id, &entry{name: name, labels: labels, kind: kind, fn: fn})
}

// Register adds an external Collector to the scrape. Collector samples
// are exposed as untyped families unless the family name is also owned
// by the registry.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Help attaches exposition help text to a metric family.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

func (r *Registry) lookup(name string, kind Kind, labels []Label) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := metricID(name, labels)
	if e, ok := r.byID[id]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", id, kind, e.kind))
		}
		return e
	}
	r.checkFamilyLocked(name, kind)
	e := &entry{name: name, labels: labels, kind: kind}
	switch kind {
	case KindCounter:
		e.counter = &Counter{}
	case KindGauge:
		e.gauge = &Gauge{}
	}
	r.addLocked(id, e)
	return e
}

func (r *Registry) addLocked(id string, e *entry) {
	r.byID[id] = e
	r.entries = append(r.entries, e)
}

// checkFamilyLocked validates the metric and label names and enforces one
// kind per family.
func (r *Registry) checkFamilyLocked(name string, kind Kind) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if k, ok := r.families[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: family %s registered as both %s and %s", name, k, kind))
	}
	r.families[name] = kind
}

// Gather snapshots every owned metric and registered collector into a
// flat sample list: families sorted by name, each family's samples in
// emission order (registration order for owned metrics, collector order
// for external ones — histogram bucket order is preserved).
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	var out []Sample
	for _, e := range entries {
		out = e.collect(out)
	}
	for _, c := range collectors {
		out = c.Collect(out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// collect appends the entry's current samples.
func (e *entry) collect(dst []Sample) []Sample {
	switch {
	case e.counter != nil:
		return append(dst, Sample{Name: e.name, Labels: e.labels, Value: float64(e.counter.Value())})
	case e.gauge != nil:
		return append(dst, Sample{Name: e.name, Labels: e.labels, Value: e.gauge.Value()})
	case e.hist != nil:
		return e.hist.collect(e.name, e.labels, dst)
	case e.fn != nil:
		return append(dst, Sample{Name: e.name, Labels: e.labels, Value: e.fn()})
	}
	return dst
}

// helpFor returns the registered help text for a family, or "".
func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// metricID renders the unique identity of a metric: name plus labels in
// the order given.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if !ValidLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l.Name, name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ValidName reports whether name is a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether name is a legal Prometheus label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func ValidLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value for the text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
