package obs

import (
	"sync"
	"time"
)

// Span is one decision trace: a single request's pass through the gate's
// layers, journaled with its latency and verdict. Spans are small value
// records — the ring copies them into preallocated slots, so recording
// allocates nothing.
type Span struct {
	// Seq is the record's position in the journal's lifetime (1-based);
	// gaps never occur, so Seq jumps reveal nothing — overwritten spans
	// are simply no longer retrievable.
	Seq uint64 `json:"seq"`
	// Start is when the decision began.
	Start time.Time `json:"start"`
	// Dur is the decision latency.
	Dur time.Duration `json:"dur_ns"`
	// Path is the request path the decision was made for.
	Path string `json:"path"`
	// Verdict is "admit" or the denial reason (httpgate.Reason*).
	Verdict string `json:"verdict"`
	// Degraded lists the layers (comma-separated) that were unavailable
	// during this decision; empty on healthy decisions.
	Degraded string `json:"degraded,omitempty"`
}

// VerdictAdmit is the Span.Verdict for admitted requests.
const VerdictAdmit = "admit"

// TraceRing is a bounded ring-buffer journal of decision spans: the most
// recent capacity spans survive, older ones are overwritten. Recording is
// a slot copy under a short mutex — no allocation — so it can sit on the
// serving path; Snapshot copies out for /debug/traces.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded
}

// DefaultTraceCapacity is the span count NewTraceRing uses for n <= 0.
const DefaultTraceCapacity = 1024

// NewTraceRing returns a ring holding the last n spans (n <= 0 selects
// DefaultTraceCapacity).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &TraceRing{buf: make([]Span, n)}
}

// Record journals one span, overwriting the oldest once full. The span's
// Seq is assigned by the ring.
func (t *TraceRing) Record(s Span) {
	t.mu.Lock()
	t.next++
	s.Seq = t.next
	t.buf[(t.next-1)%uint64(len(t.buf))] = s
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (t *TraceRing) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	count := t.next
	if count > n {
		count = n
	}
	out := make([]Span, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, t.buf[(t.next-count+i)%n])
	}
	return out
}

// Total returns how many spans were ever recorded (including ones the
// ring has since overwritten).
func (t *TraceRing) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Cap returns the ring's capacity.
func (t *TraceRing) Cap() int { return len(t.buf) }

// Collector exposes the ring's journal totals as metrics.
func (t *TraceRing) Collector() Collector {
	return CollectorFunc(func(dst []Sample) []Sample {
		return append(dst,
			Sample{Name: "obs_trace_spans_total", Value: float64(t.Total())},
			Sample{Name: "obs_trace_capacity", Value: float64(t.Cap())},
		)
	})
}
