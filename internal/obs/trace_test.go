package obs

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestTraceRingRetainsNewest(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(Span{Path: "/p/" + strconv.Itoa(i), Verdict: VerdictAdmit})
	}
	if ring.Total() != 10 {
		t.Fatalf("Total = %d, want 10", ring.Total())
	}
	spans := ring.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(spans))
	}
	for i, s := range spans {
		wantSeq := uint64(7 + i)
		if s.Seq != wantSeq {
			t.Errorf("span %d Seq = %d, want %d", i, s.Seq, wantSeq)
		}
		if want := "/p/" + strconv.Itoa(6+i); s.Path != want {
			t.Errorf("span %d Path = %q, want %q", i, s.Path, want)
		}
	}
}

func TestTraceRingPartialFill(t *testing.T) {
	ring := NewTraceRing(8)
	ring.Record(Span{Path: "/only"})
	spans := ring.Snapshot()
	if len(spans) != 1 || spans[0].Path != "/only" || spans[0].Seq != 1 {
		t.Fatalf("Snapshot = %+v", spans)
	}
}

func TestTraceRingDefaultCapacity(t *testing.T) {
	if got := NewTraceRing(0).Cap(); got != DefaultTraceCapacity {
		t.Fatalf("Cap = %d, want %d", got, DefaultTraceCapacity)
	}
}

func TestTraceRingConcurrentRecord(t *testing.T) {
	ring := NewTraceRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ring.Record(Span{Start: time.Unix(int64(i), 0), Verdict: VerdictAdmit})
			}
		}()
	}
	wg.Wait()
	if ring.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", ring.Total())
	}
	spans := ring.Snapshot()
	if len(spans) != 64 {
		t.Fatalf("Snapshot len = %d, want 64", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("non-contiguous Seq at %d: %d after %d", i, spans[i].Seq, spans[i-1].Seq)
		}
	}
}

func TestTraceRecordDoesNotAllocate(t *testing.T) {
	ring := NewTraceRing(16)
	span := Span{Path: "/p", Verdict: VerdictAdmit, Dur: time.Millisecond}
	if allocs := testing.AllocsPerRun(256, func() { ring.Record(span) }); allocs != 0 {
		t.Fatalf("Record allocates %v/op, want 0", allocs)
	}
}
