package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored
	if c.Value() != 6 {
		t.Fatalf("Value() = %d", c.Value())
	}
}

func TestKeyedCounter(t *testing.T) {
	k := NewKeyedCounter()
	k.Inc("a")
	k.Inc("a")
	k.Inc("b")
	if k.Get("a") != 2 || k.Get("b") != 1 || k.Get("zz") != 0 {
		t.Fatal("counts wrong")
	}
	if k.Total() != 3 {
		t.Fatalf("Total() = %d", k.Total())
	}
	keys := k.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys() = %v", keys)
	}
	snap := k.Snapshot()
	snap["a"] = 99
	if k.Get("a") != 2 {
		t.Fatal("Snapshot exposed internal map")
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(v)
	}
	if r.N() != 8 {
		t.Fatalf("N() = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Fatalf("Mean() = %v", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Fatalf("Variance() = %v", r.Variance())
	}
	if math.Abs(r.Std()-2) > 1e-12 {
		t.Fatalf("Std() = %v", r.Std())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.Std() != 0 {
		t.Fatal("empty Running non-zero")
	}
	r.Observe(7)
	if r.Mean() != 7 || r.Variance() != 0 {
		t.Fatal("single-sample Running wrong")
	}
}

func TestRunningMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			samples = append(samples, v)
		}
		if len(samples) < 2 {
			return true
		}
		var r Running
		var sum float64
		for _, v := range samples {
			r.Observe(v)
			sum += v
		}
		mean := sum / float64(len(samples))
		var sq float64
		for _, v := range samples {
			sq += (v - mean) * (v - mean)
		}
		naiveVar := sq / float64(len(samples))
		scale := math.Max(1, naiveVar)
		return math.Abs(r.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(r.Variance()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationStats(t *testing.T) {
	var d DurationStats
	d.Observe(4 * time.Hour)
	d.Observe(6 * time.Hour)
	if d.N() != 2 {
		t.Fatalf("N() = %d", d.N())
	}
	if d.Mean() != 5*time.Hour {
		t.Fatalf("Mean() = %v", d.Mean())
	}
	if d.Std() != time.Hour {
		t.Fatalf("Std() = %v", d.Std())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Country", "Increase")
	tb.AddRow("Uzbekistan", "160,209%")
	tb.AddRow("Iran")
	out := tb.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "Country") || !strings.Contains(lines[1], "Increase") {
		t.Fatalf("header line %q", lines[1])
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows() = %d", tb.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `quote"d`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"d\"\n"
	if csv != want {
		t.Fatalf("CSV() = %q, want %q", csv, want)
	}
}

func TestTableDropsExtraCells(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "overflow")
	if strings.Contains(tb.String(), "overflow") {
		t.Fatal("overflow cell rendered")
	}
}

func TestFormatInt(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		160209:  "160,209",
		-56000:  "-56,000",
		1234567: "1,234,567",
	}
	for in, want := range cases {
		if got := FormatInt(in); got != want {
			t.Errorf("FormatInt(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(160209.4); got != "160,209%" {
		t.Fatalf("FormatPct = %q", got)
	}
	if got := FormatPct(66.6); got != "67%" {
		t.Fatalf("FormatPct = %q", got)
	}
}
