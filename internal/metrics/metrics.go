// Package metrics provides the small measurement toolkit the experiment
// harness reports with: counters, keyed counters, running moments,
// duration histograms and fixed-width text tables.
//
// Concurrency contract: unless a type documents otherwise, the types in
// this package are NOT safe for concurrent use. Counter, KeyedCounter,
// Running and DurationStats are single-goroutine accumulators — the
// deterministic simulation model is single-threaded virtual time, and the
// hot loops that feed them must not pay for synchronisation they do not
// need. Code that accumulates from several goroutines (the replicate
// runner's worker pool) uses the sharded variants in sharded.go
// (ShardedKeyedCounter, ShardedRunning), which are safe for concurrent
// use and merge into the plain types for reporting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Counter is a monotone event counter.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (negative deltas are ignored; counters are monotone).
func (c *Counter) Add(delta int) {
	if delta > 0 {
		c.n += uint64(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// KeyedCounter counts events per string key. It is a bare map underneath
// and must only be used from one goroutine at a time (see the package
// concurrency contract); use ShardedKeyedCounter where writers race.
type KeyedCounter struct {
	counts map[string]uint64
}

// NewKeyedCounter returns an empty keyed counter.
func NewKeyedCounter() *KeyedCounter {
	return &KeyedCounter{counts: make(map[string]uint64)}
}

// Inc adds one to key.
func (k *KeyedCounter) Inc(key string) { k.counts[key]++ }

// Get returns the count for key.
func (k *KeyedCounter) Get(key string) uint64 { return k.counts[key] }

// Keys returns all keys sorted.
func (k *KeyedCounter) Keys() []string {
	out := make([]string, 0, len(k.counts))
	for key := range k.counts {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Total sums all counts.
func (k *KeyedCounter) Total() uint64 {
	var total uint64
	for _, v := range k.counts {
		total += v
	}
	return total
}

// Snapshot returns a copy of the underlying map.
func (k *KeyedCounter) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(k.counts))
	for key, v := range k.counts {
		out[key] = v
	}
	return out
}

// Running accumulates mean and variance online (Welford's algorithm).
// It is single-goroutine like the rest of the package; concurrent
// accumulation goes through ShardedRunning and merges back with Merge.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds a sample.
func (r *Running) Observe(v float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
}

// N returns the sample count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Merge folds another accumulator into r as if every sample observed by
// other had been observed by r (Chan et al.'s parallel variance update).
// The result is independent of merge order up to floating-point rounding.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n1, n2 := float64(r.n), float64(other.n)
	d := other.mean - r.mean
	n := n1 + n2
	r.mean += d * n2 / n
	r.m2 += other.m2 + d*d*n1*n2/n
	r.n += other.n
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// DurationStats accumulates durations through a Running in seconds.
type DurationStats struct {
	run Running
}

// Observe adds one duration sample.
func (d *DurationStats) Observe(v time.Duration) { d.run.Observe(v.Seconds()) }

// N returns the sample count.
func (d *DurationStats) N() int { return d.run.N() }

// Mean returns the mean duration.
func (d *DurationStats) Mean() time.Duration {
	return time.Duration(d.run.Mean() * float64(time.Second))
}

// Std returns the standard deviation.
func (d *DurationStats) Std() time.Duration {
	return time.Duration(d.run.Std() * float64(time.Second))
}

// Table is a fixed-column text table for experiment reports.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, h := range t.headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatPct renders a percentage with thousands separators, matching the
// paper's Table I style ("160,209%").
func FormatPct(pct float64) string {
	v := int64(math.Round(pct))
	return FormatInt(v) + "%"
}

// FormatInt renders an integer with thousands separators.
func FormatInt(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}
