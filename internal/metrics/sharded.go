package metrics

import (
	"sync"
	"sync/atomic"
)

// This file holds the concurrent counterparts of KeyedCounter and Running.
// Both stripe their state across mutex-guarded shards so writers on
// different keys (or different pool workers) rarely contend, and both
// merge into the plain single-goroutine types for reporting. They exist
// for the replicate runner's worker pool; inside a deterministic
// simulation the unsharded types remain the right choice.

// shardCount is the stripe width. 32 comfortably exceeds any worker-pool
// size the runner spawns (GOMAXPROCS-bounded) while keeping the zero-key
// scan in Snapshot cheap.
const shardCount = 32

// fnv1a hashes a key to a shard index without allocating.
func fnv1a(key string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return h
}

// ShardedKeyedCounter is a KeyedCounter safe for concurrent use: keys are
// striped across locked shards, so goroutines incrementing different keys
// proceed in parallel.
type ShardedKeyedCounter struct {
	shards [shardCount]struct {
		mu     sync.Mutex
		counts map[string]uint64
	}
}

// NewShardedKeyedCounter returns an empty concurrent keyed counter.
func NewShardedKeyedCounter() *ShardedKeyedCounter {
	c := &ShardedKeyedCounter{}
	for i := range c.shards {
		c.shards[i].counts = make(map[string]uint64)
	}
	return c
}

// Inc adds one to key. Safe for concurrent use.
func (c *ShardedKeyedCounter) Inc(key string) { c.Add(key, 1) }

// Add adds delta to key (negative deltas are ignored; counters are
// monotone). Safe for concurrent use.
func (c *ShardedKeyedCounter) Add(key string, delta int) {
	if delta <= 0 {
		return
	}
	s := &c.shards[fnv1a(key)%shardCount]
	s.mu.Lock()
	s.counts[key] += uint64(delta)
	s.mu.Unlock()
}

// Get returns the count for key.
func (c *ShardedKeyedCounter) Get(key string) uint64 {
	s := &c.shards[fnv1a(key)%shardCount]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[key]
}

// Total sums all counts.
func (c *ShardedKeyedCounter) Total() uint64 {
	var total uint64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, v := range s.counts {
			total += v
		}
		s.mu.Unlock()
	}
	return total
}

// Snapshot returns a point-in-time copy of all counts. The copy is
// internally consistent per shard, not across shards; for exact totals
// quiesce writers first (the runner reads only after its pool drains).
func (c *ShardedKeyedCounter) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, v := range s.counts {
			out[k] = v
		}
		s.mu.Unlock()
	}
	return out
}

// ShardedRunning is a Running accumulator safe for concurrent use. Each
// Observe locks one stripe chosen by a cheap rotating index, so pool
// workers observing simultaneously land on different stripes most of the
// time. Summary merges the stripes; the merged moments are exact, but
// their floating-point rounding depends on the observation interleaving —
// use plain Running (merged in a canonical order) where bit-stable output
// matters.
type ShardedRunning struct {
	next   atomic.Uint32 // rotating stripe cursor
	shards [shardCount]struct {
		mu  sync.Mutex
		run Running
	}
}

// NewShardedRunning returns an empty concurrent accumulator.
func NewShardedRunning() *ShardedRunning { return &ShardedRunning{} }

// ObserveAt adds a sample to the stripe for the given hint (e.g. a worker
// index). Distinct hints never contend modulo the stripe width.
func (r *ShardedRunning) ObserveAt(hint int, v float64) {
	if hint < 0 {
		hint = -hint
	}
	s := &r.shards[uint32(hint)%shardCount]
	s.mu.Lock()
	s.run.Observe(v)
	s.mu.Unlock()
}

// Observe adds a sample on a rotating stripe. Safe for concurrent use.
func (r *ShardedRunning) Observe(v float64) {
	r.ObserveAt(int(r.next.Add(1)-1), v)
}

// Summary merges every stripe into one Running snapshot.
func (r *ShardedRunning) Summary() Running {
	var out Running
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out.Merge(s.run)
		s.mu.Unlock()
	}
	return out
}

// N returns the total sample count across stripes.
func (r *ShardedRunning) N() int { s := r.Summary(); return s.N() }
