package metrics

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

// TestShardedKeyedCounterConcurrent hammers the counter from many
// goroutines; run under -race it is the concurrency-contract test the
// unsharded KeyedCounter cannot pass.
func TestShardedKeyedCounterConcurrent(t *testing.T) {
	c := NewShardedKeyedCounter()
	const (
		workers = 16
		perKey  = 500
		keys    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := "k" + strconv.Itoa(k)
				for i := 0; i < perKey; i++ {
					c.Inc(key)
				}
			}
		}()
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		key := "k" + strconv.Itoa(k)
		if got := c.Get(key); got != workers*perKey {
			t.Fatalf("Get(%s) = %d, want %d", key, got, workers*perKey)
		}
	}
	if got := c.Total(); got != workers*perKey*keys {
		t.Fatalf("Total() = %d, want %d", got, workers*perKey*keys)
	}
	snap := c.Snapshot()
	if len(snap) != keys {
		t.Fatalf("Snapshot has %d keys, want %d", len(snap), keys)
	}
}

func TestShardedKeyedCounterIgnoresNonPositive(t *testing.T) {
	c := NewShardedKeyedCounter()
	c.Add("k", -3)
	c.Add("k", 0)
	if got := c.Get("k"); got != 0 {
		t.Fatalf("Get after non-positive Add = %d, want 0", got)
	}
}

// TestShardedRunningConcurrent checks the merged moments match a serial
// Running over the same samples (exact for count/min/max/mean-sum, within
// rounding for variance).
func TestShardedRunningConcurrent(t *testing.T) {
	sr := NewShardedRunning()
	const (
		workers = 8
		per     = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sr.ObserveAt(w, float64(w*per+i))
			}
		}(w)
	}
	wg.Wait()

	var want Running
	for v := 0; v < workers*per; v++ {
		want.Observe(float64(v))
	}
	got := sr.Summary()
	if got.N() != want.N() {
		t.Fatalf("N = %d, want %d", got.N(), want.N())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("min/max = %v/%v, want %v/%v", got.Min(), got.Max(), want.Min(), want.Max())
	}
	if math.Abs(got.Mean()-want.Mean()) > 1e-9*want.Mean() {
		t.Fatalf("mean = %v, want %v", got.Mean(), want.Mean())
	}
	if math.Abs(got.Std()-want.Std()) > 1e-6*want.Std() {
		t.Fatalf("std = %v, want %v", got.Std(), want.Std())
	}
}

// TestRunningMerge checks the pairwise merge against one serial pass, in
// both merge orders and with empty operands.
func TestRunningMerge(t *testing.T) {
	samples := []float64{3, -1, 4, 1, 5, -9, 2.5, 6, 5.5, 3.5}
	var whole Running
	for _, v := range samples {
		whole.Observe(v)
	}
	for split := 0; split <= len(samples); split++ {
		var a, b Running
		for _, v := range samples[:split] {
			a.Observe(v)
		}
		for _, v := range samples[split:] {
			b.Observe(v)
		}
		merged := a
		merged.Merge(b)
		if merged.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, merged.N(), whole.N())
		}
		if math.Abs(merged.Mean()-whole.Mean()) > 1e-12 {
			t.Fatalf("split %d: mean = %v, want %v", split, merged.Mean(), whole.Mean())
		}
		if math.Abs(merged.Variance()-whole.Variance()) > 1e-9 {
			t.Fatalf("split %d: variance = %v, want %v", split, merged.Variance(), whole.Variance())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("split %d: min/max mismatch", split)
		}
	}
}
