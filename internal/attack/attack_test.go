package attack

import (
	"errors"
	"strings"
	"testing"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/fingerprint"
	"funabuse/internal/geo"
	"funabuse/internal/names"
	"funabuse/internal/proxy"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

var t0 = time.Date(2022, time.May, 2, 0, 0, 0, 0, time.UTC)

// fakeAPI is a scriptable application double implementing the app
// interfaces. Behaviour is driven by the fail function.
type fakeAPI struct {
	clock    *simclock.Manual
	holds    int
	confirms int
	sms      int
	gets     int
	nipSeen  []int
	lastErr  error
	// fail decides the error for the next reservation call.
	fail func(ctx app.ClientContext, nip int) error
	// failSMS decides the error for the next SMS call.
	failSMS func(ctx app.ClientContext) error
	// prints records every fingerprint hash presented.
	prints map[uint64]int
	// smsTo records destinations.
	smsTo []geo.MSISDN
	// ips records exits seen.
	ips map[proxy.IP]int
	id  uint64
}

func newFakeAPI(clock *simclock.Manual) *fakeAPI {
	return &fakeAPI{
		clock:  clock,
		prints: make(map[uint64]int),
		ips:    make(map[proxy.IP]int),
	}
}

func (f *fakeAPI) RequestHold(ctx app.ClientContext, req booking.HoldRequest) (*booking.Hold, error) {
	f.prints[ctx.Fingerprint.Hash()]++
	f.ips[ctx.IP]++
	if f.fail != nil {
		if err := f.fail(ctx, len(req.Passengers)); err != nil {
			f.lastErr = err
			return nil, err
		}
	}
	f.holds++
	f.nipSeen = append(f.nipSeen, len(req.Passengers))
	f.id++
	return &booking.Hold{
		ID:        booking.HoldID(f.id),
		Flight:    req.Flight,
		NiP:       len(req.Passengers),
		CreatedAt: f.clock.Now(),
		ExpiresAt: f.clock.Now().Add(30 * time.Minute),
	}, nil
}

func (f *fakeAPI) Confirm(app.ClientContext, booking.HoldID) (booking.Ticket, error) {
	f.confirms++
	return booking.Ticket{RecordLocator: "LOC" + string(rune('A'+f.confirms%26)) + "00"}, nil
}

func (f *fakeAPI) Availability(app.ClientContext, booking.FlightID) (booking.Availability, error) {
	return booking.Availability{}, nil
}

func (f *fakeAPI) RequestOTP(ctx app.ClientContext, to geo.MSISDN, login string) error {
	return f.sendSMS(ctx, to)
}

func (f *fakeAPI) SendBoardingPass(ctx app.ClientContext, locator string, to geo.MSISDN) error {
	return f.sendSMS(ctx, to)
}

func (f *fakeAPI) sendSMS(ctx app.ClientContext, to geo.MSISDN) error {
	f.prints[ctx.Fingerprint.Hash()]++
	f.ips[ctx.IP]++
	if f.failSMS != nil {
		if err := f.failSMS(ctx); err != nil {
			return err
		}
	}
	f.sms++
	f.smsTo = append(f.smsTo, to)
	return nil
}

func (f *fakeAPI) Get(ctx app.ClientContext, path string) (int, error) {
	f.gets++
	return 200, nil
}

func harness() (*simclock.Manual, *simclock.Scheduler, *fakeAPI, *simrand.RNG, *proxy.Service) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	rng := simrand.New(1)
	return clock, sched, newFakeAPI(clock), rng, proxy.NewService(rng.Derive("proxies"))
}

func spinnerWith(sched *simclock.Scheduler, api *fakeAPI, rng *simrand.RNG, svc *proxy.Service, cfg SeatSpinnerConfig) *SeatSpinner {
	rot := fingerprint.NewRotator(rng.Derive("rot"), fingerprint.NewGenerator(rng.Derive("fp")), fingerprint.WithSpoofing())
	return NewSeatSpinner(cfg, api, sched, rng.Derive("spin"), rot, svc.NewSession("SG", proxy.RotatePerRequest))
}

func TestSeatSpinnerReholdsOnExpiry(t *testing.T) {
	_, sched, api, rng, svc := harness()
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 6,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(10 * 24 * time.Hour),
	})
	s.Start()
	if err := sched.RunFor(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// One stream re-holding every ~30min for 6h: ~12 holds.
	if api.holds < 10 || api.holds > 14 {
		t.Fatalf("holds = %d, want ~12", api.holds)
	}
	for _, nip := range api.nipSeen {
		if nip != 6 {
			t.Fatalf("hold with NiP %d, want 6", nip)
		}
	}
}

func TestSeatSpinnerParallelStreams(t *testing.T) {
	_, sched, api, rng, svc := harness()
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 4, Parallel: 5,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(10 * 24 * time.Hour),
	})
	s.Start()
	if err := sched.RunFor(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// Five streams, ~6 holds each.
	if api.holds < 25 || api.holds > 35 {
		t.Fatalf("holds = %d, want ~30", api.holds)
	}
}

func TestSeatSpinnerAdaptsToCap(t *testing.T) {
	_, sched, api, rng, svc := harness()
	cap := 4
	api.fail = func(_ app.ClientContext, nip int) error {
		if nip > cap {
			return booking.ErrNiPCapExceeded
		}
		return nil
	}
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 6,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(10 * 24 * time.Hour),
	})
	s.Start()
	if err := sched.RunFor(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if s.CurrentNiP() != cap {
		t.Fatalf("CurrentNiP = %d, want %d", s.CurrentNiP(), cap)
	}
	if s.Stats().CapRejects != 2 { // probes 6 -> 5 -> 4
		t.Fatalf("CapRejects = %d, want 2", s.Stats().CapRejects)
	}
	if api.holds == 0 {
		t.Fatal("no holds after adaptation")
	}
}

func TestSeatSpinnerRotatesAfterBlock(t *testing.T) {
	_, sched, api, rng, svc := harness()
	blockedPrints := map[uint64]bool{}
	api.fail = func(ctx app.ClientContext, _ int) error {
		if blockedPrints[ctx.Fingerprint.Hash()] {
			return app.ErrBlocked
		}
		return nil
	}
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 2,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(20 * 24 * time.Hour),
	})
	s.Start()
	// Let it establish, then block its current print.
	if err := sched.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	first := s.rotator.Current().Hash()
	blockedPrints[first] = true
	if err := sched.RunFor(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Blocked == 0 {
		t.Fatal("spinner never observed the block")
	}
	if len(stats.Rotations) != 1 {
		t.Fatalf("rotations = %d, want exactly 1", len(stats.Rotations))
	}
	if s.rotator.Current().Hash() == first {
		t.Fatal("fingerprint unchanged after rotation")
	}
	// Attack resumed after rotating.
	if api.holds < 10 {
		t.Fatalf("holds = %d, attack did not resume", api.holds)
	}
	if iv := stats.Rotations[0].Interval(); iv < 15*time.Minute || iv > 40*time.Hour {
		t.Fatalf("rotation interval %v implausible", iv)
	}
}

func TestSeatSpinnerStopsBeforeDeparture(t *testing.T) {
	_, sched, api, rng, svc := harness()
	departure := t0.Add(5 * 24 * time.Hour)
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 2,
		ReholdInterval:      30 * time.Minute,
		StopBeforeDeparture: 48 * time.Hour,
		Departure:           departure,
	})
	s.Start()
	if err := sched.RunFor(6 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if !s.Stopped() {
		t.Fatal("spinner still running after deadline")
	}
	// ~3 days of holding at 30-minute cadence.
	if api.holds < 130 || api.holds > 160 {
		t.Fatalf("holds = %d, want ~144", api.holds)
	}
}

func TestSeatSpinnerStructuredIdentities(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(2)
	svc := proxy.NewService(rng.Derive("p"))

	var captured [][]names.Identity
	api.fail = nil
	origAPI := *api
	_ = origAPI
	capturing := &captureAPI{fakeAPI: api, captured: &captured}
	rot := fingerprint.NewRotator(rng.Derive("rot"), fingerprint.NewGenerator(rng.Derive("fp")), fingerprint.WithSpoofing())
	s := NewSeatSpinner(SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 3,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(10 * 24 * time.Hour),
		Identity:       IdentityStructured,
	}, capturing, sched, rng.Derive("spin"), rot, svc.NewSession("SG", proxy.RotatePerRequest))
	s.Start()
	if err := sched.RunFor(5 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(captured) < 8 {
		t.Fatalf("captured %d parties", len(captured))
	}
	lead := captured[0][0].Key()
	var prevBirth time.Time
	for i, party := range captured {
		if party[0].Key() != lead {
			t.Fatalf("party %d lead changed", i)
		}
		if i > 0 && !party[0].BirthDate.After(prevBirth) {
			t.Fatalf("lead birthdate not rotating at party %d", i)
		}
		prevBirth = party[0].BirthDate
	}
}

// captureAPI wraps fakeAPI to capture passenger lists.
type captureAPI struct {
	*fakeAPI
	captured *[][]names.Identity
}

func (c *captureAPI) RequestHold(ctx app.ClientContext, req booking.HoldRequest) (*booking.Hold, error) {
	ps := append([]names.Identity(nil), req.Passengers...)
	*c.captured = append(*c.captured, ps)
	return c.fakeAPI.RequestHold(ctx, req)
}

func TestManualSpinnerUsesFixedPoolWithTypos(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(3)
	svc := proxy.NewService(rng.Derive("p"))

	var captured [][]names.Identity
	capturing := &captureAPI{fakeAPI: api, captured: &captured}
	m := NewManualSpinner(ManualSpinnerConfig{
		ID: "m1", Flight: "F1", PoolSize: 5, PartySize: 3,
		MeanGap: 10 * time.Minute, TypoRate: 0.3, Devices: 2,
		Until: t0.Add(48 * time.Hour),
	}, capturing, sched, rng.Derive("m"), svc.NewSession("TH", proxy.RotatePerRequest))
	m.Start()
	if err := sched.RunFor(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.Holds() < 50 {
		t.Fatalf("manual spinner held %d times", m.Holds())
	}
	// Occurrences concentrate on the 5-name base pool; typo variants are
	// each distinct but individually rare.
	counts := map[string]int{}
	entries := 0
	for _, party := range captured {
		for _, id := range party {
			counts[id.Key()]++
			entries++
		}
	}
	type kv struct {
		name string
		n    int
	}
	var top []kv
	for name, n := range counts {
		top = append(top, kv{name, n})
	}
	// Select the 5 most frequent names.
	for i := range top {
		for j := i + 1; j < len(top); j++ {
			if top[j].n > top[i].n {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	baseShare := 0
	for i := 0; i < 5 && i < len(top); i++ {
		baseShare += top[i].n
	}
	if float64(baseShare)/float64(entries) < 0.6 {
		t.Fatalf("base pool covers %d/%d entries, want dominant reuse", baseShare, entries)
	}
	if len(counts) <= 5 {
		t.Fatal("no typo variants observed at 30% typo rate")
	}
	// Broad IP range: per-request rotation.
	if len(api.ips) < 20 {
		t.Fatalf("manual spinner used %d IPs, want a broad range", len(api.ips))
	}
}

func TestManualSpinnerStopsAtDeadline(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(4)
	svc := proxy.NewService(rng.Derive("p"))
	m := NewManualSpinner(ManualSpinnerConfig{
		ID: "m1", Flight: "F1", Until: t0.Add(6 * time.Hour),
	}, api, sched, rng.Derive("m"), svc.NewSession("TH", proxy.RotatePerRequest))
	m.Start()
	if err := sched.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	afterDeadline := api.holds
	if err := sched.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if api.holds != afterDeadline {
		t.Fatal("manual spinner kept booking past its deadline")
	}
}

func TestSMSPumperPurchasesThenPumps(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(5)
	svc := proxy.NewService(rng.Derive("p"))
	reg := geo.Default()
	rot := fingerprint.NewRotator(rng.Derive("rot"), fingerprint.NewGenerator(rng.Derive("fp")), fingerprint.WithSpoofing())

	p := NewSMSPumper(SMSPumperConfig{
		ID: "pump", Flight: "F1", Tickets: 3,
		SendInterval: time.Minute,
		Until:        t0.Add(12 * time.Hour),
	}, api, api, sched, rng.Derive("pump"), svc, rot, reg)
	p.Start()
	if err := sched.RunFor(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Locators()); got != 3 {
		t.Fatalf("locators = %d, want 3", got)
	}
	if api.confirms != 3 {
		t.Fatalf("confirms = %d", api.confirms)
	}
	// ~720 sends at 1/min over 12h.
	if p.Sent() < 500 || p.Sent() > 900 {
		t.Fatalf("sent = %d, want ~720", p.Sent())
	}
	// Destinations resolve to registry countries, skewed to the heavy mix.
	counts := map[string]int{}
	for _, to := range api.smsTo {
		c, ok := reg.CountryOf(to)
		if !ok {
			t.Fatalf("unresolvable destination %s", to)
		}
		counts[c.Code]++
	}
	if counts["UZ"] < counts["TH"] {
		t.Fatalf("UZ (%d) not favoured over TH (%d)", counts["UZ"], counts["TH"])
	}
}

func TestSMSPumperGeoMatchedExits(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(6)
	svc := proxy.NewService(rng.Derive("p"))
	reg := geo.Default()
	rot := fingerprint.NewRotator(rng.Derive("rot"), fingerprint.NewGenerator(rng.Derive("fp")), fingerprint.WithSpoofing())

	p := NewSMSPumper(SMSPumperConfig{
		ID: "pump", Flight: "F1", Tickets: 1,
		SendInterval: time.Minute,
		Until:        t0.Add(4 * time.Hour),
	}, api, api, sched, rng.Derive("pump"), svc, rot, reg)
	p.Start()
	if err := sched.RunFor(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// Exit pools materialized per destination country — geo matching.
	if got := len(svc.Countries()); got < 5 {
		t.Fatalf("proxy pools in %d countries, want several (geo-matched exits)", got)
	}
}

func TestSMSPumperRotatesOnBlock(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(7)
	svc := proxy.NewService(rng.Derive("p"))
	reg := geo.Default()
	rot := fingerprint.NewRotator(rng.Derive("rot"), fingerprint.NewGenerator(rng.Derive("fp")), fingerprint.WithSpoofing())

	blocked := map[uint64]bool{}
	api.failSMS = func(ctx app.ClientContext) error {
		if blocked[ctx.Fingerprint.Hash()] {
			return app.ErrBlocked
		}
		return nil
	}
	p := NewSMSPumper(SMSPumperConfig{
		ID: "pump", Flight: "F1", Tickets: 1,
		SendInterval: time.Minute,
		Until:        t0.Add(8 * time.Hour),
	}, api, api, sched, rng.Derive("pump"), svc, rot, reg)
	p.Start()
	if err := sched.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	blocked[rot.Current().Hash()] = true
	if err := sched.RunFor(7 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if p.Rotations() == 0 {
		t.Fatal("pumper never rotated after block")
	}
	if p.Blocked() == 0 {
		t.Fatal("block not observed")
	}
	// Pumping resumed under the new print.
	if p.Sent() < 300 {
		t.Fatalf("sent = %d, pumping did not resume", p.Sent())
	}
}

func TestSMSPumperBacksOffWhenRestricted(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(8)
	svc := proxy.NewService(rng.Derive("p"))
	reg := geo.Default()
	rot := fingerprint.NewRotator(rng.Derive("rot"), fingerprint.NewGenerator(rng.Derive("fp")), fingerprint.WithSpoofing())

	api.failSMS = func(app.ClientContext) error { return app.ErrRestricted }
	p := NewSMSPumper(SMSPumperConfig{
		ID: "pump", Flight: "F1", Tickets: 1,
		SendInterval: time.Minute,
		Until:        t0.Add(24 * time.Hour),
	}, api, api, sched, rng.Derive("pump"), svc, rot, reg)
	p.Start()
	if err := sched.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if p.Sent() != 0 {
		t.Fatalf("sent %d through a removed feature", p.Sent())
	}
	// Probes every ~6h, not every minute.
	if p.Attempts() > 10 {
		t.Fatalf("attempts = %d, want occasional probes only", p.Attempts())
	}
}

func TestScraperCrawlsAndHitsTrap(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(9)
	svc := proxy.NewService(rng.Derive("p"))

	s := NewScraper(ScraperConfig{
		ID: "sc", Interval: time.Second, Requests: 300, HitTrap: true,
	}, api, sched, rng.Derive("s"), svc.NewSession("US", proxy.RotatePerSession))
	s.Start()
	if err := sched.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if s.Sent() != 300 {
		t.Fatalf("sent = %d, want 300", s.Sent())
	}
	if api.gets != 300 {
		t.Fatalf("gets = %d", api.gets)
	}
}

func TestScraperPausesSplitBursts(t *testing.T) {
	clock := simclock.NewManual(t0)
	sched := simclock.NewScheduler(clock)
	api := newFakeAPI(clock)
	rng := simrand.New(10)
	svc := proxy.NewService(rng.Derive("p"))

	s := NewScraper(ScraperConfig{
		ID: "sc", Interval: time.Second, Requests: 100, PauseEvery: 40,
	}, api, sched, rng.Derive("s"), svc.NewSession("US", proxy.RotatePerSession))
	s.Start()
	// 100 requests with two 45-minute pauses: needs > 90 minutes.
	if err := sched.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if s.Sent() >= 100 {
		t.Fatal("pauses not applied")
	}
	if err := sched.RunFor(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if s.Sent() != 100 {
		t.Fatalf("sent = %d after pauses", s.Sent())
	}
}

func TestDefaultTargetMixCoversRegistry(t *testing.T) {
	reg := geo.Default()
	mix := DefaultTargetMix(reg)
	total := 0.0
	heavy := map[string]float64{}
	for _, wc := range mix {
		total += wc.Weight
		heavy[wc.Code] = wc.Weight
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("mix weights sum to %v", total)
	}
	if heavy["UZ"] < heavy["KH"] || heavy["UZ"] < heavy["TH"] {
		t.Fatal("UZ not the heaviest destination")
	}
	if len(mix) < 40 {
		t.Fatalf("mix covers %d countries", len(mix))
	}
}

func TestRotationIntervalMeasurement(t *testing.T) {
	r := Rotation{BlockedAt: t0, ResumedAt: t0.Add(5 * time.Hour)}
	if r.Interval() != 5*time.Hour {
		t.Fatalf("Interval = %v", r.Interval())
	}
	var s SpinnerStats
	if s.MeanRotationInterval() != 0 {
		t.Fatal("empty stats mean not zero")
	}
	s.Rotations = []Rotation{
		{BlockedAt: t0, ResumedAt: t0.Add(4 * time.Hour)},
		{BlockedAt: t0, ResumedAt: t0.Add(6 * time.Hour)},
	}
	if s.MeanRotationInterval() != 5*time.Hour {
		t.Fatalf("mean = %v", s.MeanRotationInterval())
	}
}

func TestSpinnerUnknownErrorRetries(t *testing.T) {
	_, sched, api, rng, svc := harness()
	calls := 0
	api.fail = func(app.ClientContext, int) error {
		calls++
		if calls < 3 {
			return errors.New("transient upstream failure")
		}
		return nil
	}
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 1,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(10 * 24 * time.Hour),
	})
	s.Start()
	if err := sched.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if api.holds == 0 {
		t.Fatal("spinner gave up on transient errors")
	}
}

func TestSpinnerClientKeyRotatesWithIdentity(t *testing.T) {
	_, sched, api, rng, svc := harness()
	keys := map[string]bool{}
	blocked := false
	api.fail = func(ctx app.ClientContext, _ int) error {
		keys[ctx.ClientKey] = true
		if blocked {
			blocked = false
			return app.ErrBlocked
		}
		return nil
	}
	s := spinnerWith(sched, api, rng, svc, SeatSpinnerConfig{
		ID: "s1", Flight: "F1", TargetNiP: 1,
		ReholdInterval: 30 * time.Minute,
		Departure:      t0.Add(20 * 24 * time.Hour),
	})
	s.Start()
	if err := sched.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	blocked = true
	if err := sched.RunFor(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	distinct := 0
	for k := range keys {
		if strings.HasPrefix(k, "s1-c") {
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatalf("client key did not rotate: %v", keys)
	}
}
