package attack

import (
	"strconv"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/fingerprint"
	"funabuse/internal/proxy"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
	"funabuse/internal/weblog"
)

// ScraperConfig parameterises the high-volume crawler baseline. Scrapers
// are the functional abuse traditional detection was built for: hundreds of
// requests per session, exhaustive breadth, robotic cadence — everything
// the low-volume attacks lack.
type ScraperConfig struct {
	ID string
	// Paths is the URL universe to crawl; defaults to a search/flight tree.
	Paths []string
	// Interval is the fixed inter-request delay (robotic cadence).
	Interval time.Duration
	// Requests is the total crawl budget.
	Requests int
	// HitTrap controls whether the crawler follows invisible links into
	// the trap file, as exhaustive crawlers do.
	HitTrap bool
	// PauseEvery inserts a long pause after this many requests (0 = never):
	// crawl bursts separated by idle gaps, which splits the web log into
	// many hot sessions.
	PauseEvery int
	// PauseFor is the burst gap; defaults to 45 minutes, longer than the
	// classical 30-minute sessionization threshold.
	PauseFor time.Duration
}

// Scraper is the baseline high-volume bot.
type Scraper struct {
	cfg     ScraperConfig
	api     app.BrowseAPI
	sched   *simclock.Scheduler
	rng     *simrand.RNG
	session *proxy.Session
	print   fingerprint.Fingerprint

	sent    int
	denied  int
	stopped bool
}

// NewScraper builds a scraper with a naive headless fingerprint.
func NewScraper(
	cfg ScraperConfig,
	api app.BrowseAPI,
	sched *simclock.Scheduler,
	rng *simrand.RNG,
	session *proxy.Session,
) *Scraper {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Requests < 1 {
		cfg.Requests = 500
	}
	if len(cfg.Paths) == 0 {
		cfg.Paths = defaultCrawlPaths()
	}
	if cfg.PauseFor <= 0 {
		cfg.PauseFor = 45 * time.Minute
	}
	return &Scraper{
		cfg:     cfg,
		api:     api,
		sched:   sched,
		rng:     rng,
		session: session,
		print:   fingerprint.NewGenerator(rng.Derive("fp")).NaiveHeadless(),
	}
}

func defaultCrawlPaths() []string {
	paths := make([]string, 0, 120)
	for i := range 60 {
		paths = append(paths, "/search/results/page"+strconv.Itoa(i))
	}
	for i := range 60 {
		paths = append(paths, "/flight/FL"+strconv.Itoa(100+i)+"/fares")
	}
	return paths
}

// Sent returns how many requests completed.
func (s *Scraper) Sent() int { return s.sent }

// Denied returns how many requests the defence rejected.
func (s *Scraper) Denied() int { return s.denied }

// Start schedules the crawl.
func (s *Scraper) Start() {
	s.sched.ScheduleAfter(s.cfg.Interval, s.step)
}

func (s *Scraper) step(now time.Time) {
	if s.stopped || s.sent+s.denied >= s.cfg.Requests {
		s.stopped = true
		return
	}
	path := s.cfg.Paths[(s.sent+s.denied)%len(s.cfg.Paths)]
	if s.cfg.HitTrap && (s.sent+s.denied)%97 == 42 {
		path = weblog.TrapPath
	}
	ctx := app.ClientContext{
		IP:          s.session.Addr(),
		Fingerprint: s.print,
		ClientKey:   s.cfg.ID + "-session",
		Actor:       weblog.ActorScraper,
		ActorID:     s.cfg.ID,
	}
	if _, err := s.api.Get(ctx, path); err != nil {
		s.denied++
	} else {
		s.sent++
	}
	next := s.cfg.Interval
	if s.cfg.PauseEvery > 0 && (s.sent+s.denied)%s.cfg.PauseEvery == 0 {
		next = s.cfg.PauseFor
	}
	s.sched.Schedule(now.Add(next), s.step)
}
