// Package attack implements the adversaries of the paper's case studies:
// automated Seat Spinners that hold inventory and re-hold it on expiry
// (case A), structured and manual passenger-detail abusers (case B/C), the
// boarding-pass SMS Pumper (case C/D), and a classic scraper as the
// high-volume baseline that traditional detection *does* catch.
//
// Attackers interact with the defended application only through the
// interfaces in package app and adapt to the errors they observe: a cap
// rejection makes them probe smaller party sizes, a block makes them rotate
// fingerprint and exit IP after a reaction delay calibrated to the paper's
// measured 5.3-hour average.
package attack

import (
	"errors"
	"strconv"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/fingerprint"
	"funabuse/internal/names"
	"funabuse/internal/proxy"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
	"funabuse/internal/weblog"
)

// Rotation records one block→rotation cycle for the case-A measurement.
type Rotation struct {
	// BlockedAt is when the attacker first observed the block.
	BlockedAt time.Time
	// ResumedAt is when it reappeared with a fresh identity.
	ResumedAt time.Time
}

// Interval returns the rotation reaction time.
func (r Rotation) Interval() time.Duration { return r.ResumedAt.Sub(r.BlockedAt) }

// SpinnerStats aggregates a seat spinner's activity.
type SpinnerStats struct {
	Attempts     int
	Holds        int
	CapRejects   int
	StockRejects int
	Blocked      int
	RateLimited  int
	Rotations    []Rotation
	// SeatsHeldTotal sums NiP over successful holds.
	SeatsHeldTotal int
}

// MeanRotationInterval returns the average block→resume delay.
func (s SpinnerStats) MeanRotationInterval() time.Duration {
	if len(s.Rotations) == 0 {
		return 0
	}
	var total time.Duration
	for _, r := range s.Rotations {
		total += r.Interval()
	}
	return total / time.Duration(len(s.Rotations))
}

// IdentityStyle selects how a spinner fills passenger details.
type IdentityStyle int

// Identity styles observed in the case studies.
const (
	// IdentityGarbage uses random keyboard-mash names (early automation).
	IdentityGarbage IdentityStyle = iota + 1
	// IdentityStructured uses a fixed lead name with rotating birthdate
	// plus overlapping pool members (Airline B).
	IdentityStructured
)

// SeatSpinnerConfig parameterises an automated spinner.
type SeatSpinnerConfig struct {
	// ID is the attacker's stable evaluation identity.
	ID string
	// Flight is the targeted flight.
	Flight booking.FlightID
	// TargetNiP is the initial party size per reservation. The Airline A
	// attacker chose 6 — large enough to block seats fast, small enough to
	// avoid the statistically rare maximum.
	TargetNiP int
	// ReholdInterval is how often the spinner re-issues holds, learned in
	// reconnaissance to equal the hold TTL.
	ReholdInterval time.Duration
	// StopBeforeDeparture ends the attack this long before departure (the
	// paper observed holding cease two days out).
	StopBeforeDeparture time.Duration
	// Departure is the flight's departure instant.
	Departure time.Time
	// Identity selects the passenger-detail style.
	Identity IdentityStyle
	// Parallel is how many concurrent holds the spinner maintains.
	Parallel int
}

// SeatSpinner is the automated DoI bot.
type SeatSpinner struct {
	cfg     SeatSpinnerConfig
	api     app.ReservationAPI
	sched   *simclock.Scheduler
	rng     *simrand.RNG
	rotator *fingerprint.Rotator
	session *proxy.Session
	pool    *names.Pool
	gen     *names.Generator

	nip       int
	clientSeq int
	// generation invalidates in-flight hold streams across rotations so the
	// stream count stays at cfg.Parallel.
	generation int
	stats      SpinnerStats
	stopped    bool
	// rotating guards against stacking several pending rotations when many
	// parallel attempts observe the same block.
	rotating       bool
	blockFirstSeen time.Time
}

// NewSeatSpinner builds a spinner. The rotator starts from a naive headless
// profile unless spoofing is configured by the caller.
func NewSeatSpinner(
	cfg SeatSpinnerConfig,
	api app.ReservationAPI,
	sched *simclock.Scheduler,
	rng *simrand.RNG,
	rotator *fingerprint.Rotator,
	session *proxy.Session,
) *SeatSpinner {
	if cfg.TargetNiP < 1 {
		cfg.TargetNiP = 6
	}
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.ReholdInterval <= 0 {
		cfg.ReholdInterval = 30 * time.Minute
	}
	if cfg.StopBeforeDeparture <= 0 {
		cfg.StopBeforeDeparture = 48 * time.Hour
	}
	return &SeatSpinner{
		cfg:     cfg,
		api:     api,
		sched:   sched,
		rng:     rng,
		rotator: rotator,
		session: session,
		pool:    names.NewPool(rng.Derive("pool"), 8),
		gen:     names.NewGenerator(rng.Derive("gen")),
		nip:     cfg.TargetNiP,
	}
}

// Stats returns the spinner's activity counters.
func (s *SeatSpinner) Stats() SpinnerStats { return s.stats }

// CurrentNiP returns the party size the spinner is currently using.
func (s *SeatSpinner) CurrentNiP() int { return s.nip }

// Stopped reports whether the attack has ceased.
func (s *SeatSpinner) Stopped() bool { return s.stopped }

// Start schedules the attack's first wave.
func (s *SeatSpinner) Start() {
	s.launchWave(s.sched.Now())
}

// launchWave starts cfg.Parallel staggered hold streams in the current
// generation.
func (s *SeatSpinner) launchWave(at time.Time) {
	gen := s.generation
	for i := range s.cfg.Parallel {
		delay := time.Duration(i) * 7 * time.Second
		s.sched.Schedule(at.Add(delay), func(now time.Time) { s.attempt(now, gen) })
	}
}

func (s *SeatSpinner) deadline() time.Time {
	return s.cfg.Departure.Add(-s.cfg.StopBeforeDeparture)
}

func (s *SeatSpinner) attempt(now time.Time, gen int) {
	if gen != s.generation {
		return // stream from a pre-rotation generation
	}
	if s.stopped || !now.Before(s.deadline()) {
		s.stopped = true
		return
	}
	reattempt := func(at time.Time) {
		s.sched.Schedule(at, func(t time.Time) { s.attempt(t, gen) })
	}
	ctx := s.clientContext()
	s.stats.Attempts++
	hold, err := s.api.RequestHold(ctx, booking.HoldRequest{
		Flight:     s.cfg.Flight,
		Passengers: s.passengers(),
		ActorID:    ctx.ClientKey,
	})
	switch {
	case err == nil:
		s.stats.Holds++
		s.stats.SeatsHeldTotal += hold.NiP
		// Re-hold the moment the current hold expires (small jitter).
		jitter := time.Duration(s.rng.Intn(30)) * time.Second
		reattempt(now.Add(s.cfg.ReholdInterval + jitter))

	case errors.Is(err, booking.ErrNiPCapExceeded):
		s.stats.CapRejects++
		// Probe downward until the new cap admits us — the Fig. 1 shift
		// from NiP 6 to the capped 4.
		if s.nip > 1 {
			s.nip--
		}
		reattempt(now.Add(time.Duration(10+s.rng.Intn(50)) * time.Second))

	case errors.Is(err, booking.ErrInsufficientStock):
		s.stats.StockRejects++
		// Flight is (momentarily) full; retry when holds start expiring.
		reattempt(now.Add(s.cfg.ReholdInterval / 2))

	case errors.Is(err, app.ErrBlocked):
		s.stats.Blocked++
		s.scheduleRotation(now)

	case errors.Is(err, app.ErrChallengeFailed):
		// Solver retry after a short delay.
		reattempt(now.Add(time.Duration(20+s.rng.Intn(40)) * time.Second))

	case errors.Is(err, app.ErrRateLimited):
		s.stats.RateLimited++
		reattempt(now.Add(10 * time.Minute))

	case errors.Is(err, booking.ErrFlightDeparted):
		s.stopped = true

	default:
		// Unknown failure: retry conservatively.
		reattempt(now.Add(5 * time.Minute))
	}
}

// scheduleRotation arranges a fingerprint/IP/client-key rotation after the
// operator's reaction delay, collapsing concurrent block observations into
// a single rotation.
func (s *SeatSpinner) scheduleRotation(now time.Time) {
	if s.rotating {
		return
	}
	s.rotating = true
	s.blockFirstSeen = now
	delay := s.rotator.ReactionDelay()
	s.sched.Schedule(now.Add(delay), func(resume time.Time) {
		s.rotator.Rotate()
		s.session.Blocked()
		s.clientSeq++
		s.generation++
		s.rotating = false
		s.stats.Rotations = append(s.stats.Rotations, Rotation{
			BlockedAt: s.blockFirstSeen,
			ResumedAt: resume,
		})
		// Relaunch the full wave under the fresh identity; streams from the
		// old generation are invalidated.
		s.launchWave(resume)
	})
}

func (s *SeatSpinner) clientContext() app.ClientContext {
	return app.ClientContext{
		IP:          s.session.Addr(),
		Fingerprint: s.rotator.Current(),
		ClientKey:   s.cfg.ID + "-c" + strconv.Itoa(s.clientSeq),
		Actor:       weblog.ActorSeatSpinner,
		ActorID:     s.cfg.ID,
	}
}

func (s *SeatSpinner) passengers() []names.Identity {
	switch s.cfg.Identity {
	case IdentityStructured:
		return s.pool.OverlappingParty(s.nip)
	default:
		out := make([]names.Identity, s.nip)
		for i := range out {
			out[i] = s.gen.Garbage()
		}
		return out
	}
}
