package attack

import (
	"errors"
	"strconv"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/fingerprint"
	"funabuse/internal/names"
	"funabuse/internal/proxy"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
	"funabuse/internal/weblog"
)

// ManualSpinnerConfig parameterises a human seat-spinning operation
// (Airline C): a person (or small group) repeatedly holding seats with a
// fixed set of passenger names permuted across bookings, occasional typos
// from hand entry, a broad range of exit IPs, and fully organic browser
// fingerprints — nothing for bot detection to key on.
type ManualSpinnerConfig struct {
	ID     string
	Flight booking.FlightID
	// PoolSize is the fixed passenger-name set size.
	PoolSize int
	// PartySize is how many passengers per booking.
	PartySize int
	// MeanGap is the mean time between booking attempts; manual operators
	// work at minutes-scale, not seconds-scale.
	MeanGap time.Duration
	// TypoRate is the probability a name is hand-mistyped on entry.
	TypoRate float64
	// Devices is how many distinct (organic) browser fingerprints the
	// operation uses.
	Devices int
	// Until stops the activity at this instant.
	Until time.Time
}

// ManualSpinner is the human DoI attacker.
type ManualSpinner struct {
	cfg     ManualSpinnerConfig
	api     app.ReservationAPI
	sched   *simclock.Scheduler
	rng     *simrand.RNG
	session *proxy.Session
	pool    *names.Pool
	devices []fingerprint.Fingerprint

	attempts int
	holds    int
	rejects  int
	stopped  bool
}

// NewManualSpinner builds the attacker. Fingerprints are drawn from the
// organic population: a human's real devices.
func NewManualSpinner(
	cfg ManualSpinnerConfig,
	api app.ReservationAPI,
	sched *simclock.Scheduler,
	rng *simrand.RNG,
	session *proxy.Session,
) *ManualSpinner {
	if cfg.PoolSize < 2 {
		cfg.PoolSize = 6
	}
	if cfg.PartySize < 1 {
		cfg.PartySize = 2
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 12 * time.Minute
	}
	if cfg.Devices < 1 {
		cfg.Devices = 2
	}
	gen := fingerprint.NewGenerator(rng.Derive("devices"))
	devices := make([]fingerprint.Fingerprint, cfg.Devices)
	for i := range devices {
		devices[i] = gen.Organic()
	}
	return &ManualSpinner{
		cfg:     cfg,
		api:     api,
		sched:   sched,
		rng:     rng,
		session: session,
		pool:    names.NewPool(rng.Derive("pool"), cfg.PoolSize),
		devices: devices,
	}
}

// Attempts returns how many bookings were tried.
func (m *ManualSpinner) Attempts() int { return m.attempts }

// Holds returns how many holds succeeded.
func (m *ManualSpinner) Holds() int { return m.holds }

// Rejects returns how many attempts any defence layer rejected.
func (m *ManualSpinner) Rejects() int { return m.rejects }

// Start schedules the first booking attempt.
func (m *ManualSpinner) Start() {
	m.sched.ScheduleAfter(m.nextGap(), m.attempt)
}

func (m *ManualSpinner) nextGap() time.Duration {
	return time.Duration(m.rng.Exp(float64(m.cfg.MeanGap)))
}

func (m *ManualSpinner) attempt(now time.Time) {
	if m.stopped || !now.Before(m.cfg.Until) {
		m.stopped = true
		return
	}
	m.attempts++
	party := m.pool.Permuted(m.cfg.PartySize)
	for i := range party {
		if m.rng.Bool(m.cfg.TypoRate) {
			party[i] = names.Misspell(m.rng, party[i])
		}
	}
	// A human operator works in sittings: one browser session (cookie and
	// device) per a few-hour block, not a fresh identity per booking.
	sitting := strconv.Itoa(now.Hour() / 3)
	ctx := app.ClientContext{
		IP:          m.session.Addr(),
		Fingerprint: m.devices[(now.Hour()/3)%len(m.devices)],
		ClientKey:   m.cfg.ID + "-s" + sitting,
		Cookie:      m.cfg.ID + "-s" + sitting,
		Actor:       weblog.ActorManualSpinner,
		ActorID:     m.cfg.ID,
	}
	_, err := m.api.RequestHold(ctx, booking.HoldRequest{
		Flight:     m.cfg.Flight,
		Passengers: party,
		ActorID:    ctx.ClientKey,
	})
	switch {
	case err == nil:
		m.holds++
	case errors.Is(err, booking.ErrFlightDeparted):
		m.stopped = true
		return
	default:
		m.rejects++
		// A human shrugs and tries again later regardless of the error.
	}
	m.sched.Schedule(now.Add(m.nextGap()), m.attempt)
}
