package attack

import (
	"errors"
	"strconv"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/fingerprint"
	"funabuse/internal/geo"
	"funabuse/internal/names"
	"funabuse/internal/proxy"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
	"funabuse/internal/weblog"
)

// SMSPumperConfig parameterises the advanced boarding-pass pumping attack
// of the Airline D case study.
type SMSPumperConfig struct {
	ID string
	// Flight is the flight tickets are purchased on.
	Flight booking.FlightID
	// Tickets is how many e-tickets the attacker buys (with stolen cards)
	// to obtain record locators — the paper notes they issued only a few
	// and leveraged each for a high volume of SMS.
	Tickets int
	// TargetCountries lists destination ISO codes with selection weights.
	// The paper's attackers spread over 42 countries but concentrated on
	// high-payout routes.
	TargetCountries []WeightedCountry
	// SendInterval is the mean time between SMS requests.
	SendInterval time.Duration
	// PremiumShare is the fraction of numbers drawn from premium ranges.
	PremiumShare float64
	// Until ends the campaign at this instant if defences have not stopped
	// it earlier.
	Until time.Time
}

// WeightedCountry pairs a destination with its targeting weight.
type WeightedCountry struct {
	Code   string
	Weight float64
}

// DefaultTargetMix returns the case-study-C targeting mix: six high-cost
// destinations take the bulk of the traffic; the remaining registry
// countries form the long tail that brings the footprint to 42+ countries.
func DefaultTargetMix(reg *geo.Registry) []WeightedCountry {
	heavy := map[string]float64{
		"UZ": 0.34, "IR": 0.22, "KG": 0.13, "JO": 0.08, "NG": 0.07, "KH": 0.05,
	}
	var out []WeightedCountry
	var tail []string
	for _, code := range reg.Codes() {
		if w, ok := heavy[code]; ok {
			out = append(out, WeightedCountry{Code: code, Weight: w})
			continue
		}
		tail = append(tail, code)
	}
	// Remaining ~11% spread across the tail.
	if len(tail) > 0 {
		w := 0.11 / float64(len(tail))
		for _, code := range tail {
			out = append(out, WeightedCountry{Code: code, Weight: w})
		}
	}
	return out
}

// SMSPumper executes the two-phase attack: purchase tickets, then pump
// boarding-pass SMS to monetised destinations with geo-matched residential
// exits and rotating spoofed fingerprints.
type SMSPumper struct {
	cfg   SMSPumperConfig
	resv  app.ReservationAPI
	smst  app.SMSAPI
	sched *simclock.Scheduler
	rng   *simrand.RNG
	// proxies provides per-country sessions so the exit IP matches the
	// destination number's country.
	proxies  *proxy.Service
	rotator  *fingerprint.Rotator
	registry *geo.Registry
	gen      *names.Generator

	locators  []string
	countries []string
	chooser   *simrand.Categorical
	sessions  map[string]*proxy.Session

	sent        int
	attempts    int
	blocked     int
	rateLimited int
	rotations   int
	stopped     bool
	clientSeq   int
}

// NewSMSPumper builds the attacker. The rotator should be configured with
// spoofing: the case-study attackers mimicked organic fingerprints.
func NewSMSPumper(
	cfg SMSPumperConfig,
	resv app.ReservationAPI,
	smsAPI app.SMSAPI,
	sched *simclock.Scheduler,
	rng *simrand.RNG,
	proxies *proxy.Service,
	rotator *fingerprint.Rotator,
	registry *geo.Registry,
) *SMSPumper {
	if cfg.Tickets < 1 {
		cfg.Tickets = 3
	}
	if cfg.SendInterval <= 0 {
		cfg.SendInterval = 20 * time.Second
	}
	if len(cfg.TargetCountries) == 0 {
		cfg.TargetCountries = DefaultTargetMix(registry)
	}
	codes := make([]string, len(cfg.TargetCountries))
	weights := make([]float64, len(cfg.TargetCountries))
	for i, wc := range cfg.TargetCountries {
		codes[i] = wc.Code
		weights[i] = wc.Weight
	}
	return &SMSPumper{
		cfg:       cfg,
		resv:      resv,
		smst:      smsAPI,
		sched:     sched,
		rng:       rng,
		proxies:   proxies,
		rotator:   rotator,
		registry:  registry,
		gen:       names.NewGenerator(rng.Derive("identities")),
		countries: codes,
		chooser:   simrand.NewCategorical(weights),
		sessions:  make(map[string]*proxy.Session),
	}
}

// Sent returns delivered pump messages.
func (p *SMSPumper) Sent() int { return p.sent }

// Attempts returns total send attempts.
func (p *SMSPumper) Attempts() int { return p.attempts }

// Blocked returns attempts denied by block rules.
func (p *SMSPumper) Blocked() int { return p.blocked }

// RateLimited returns attempts denied by rate limits.
func (p *SMSPumper) RateLimited() int { return p.rateLimited }

// Rotations returns how many fingerprint rotations the campaign performed.
func (p *SMSPumper) Rotations() int { return p.rotations }

// Stopped reports whether the campaign has ended.
func (p *SMSPumper) Stopped() bool { return p.stopped }

// Locators returns the record locators obtained in the purchase phase.
func (p *SMSPumper) Locators() []string {
	out := make([]string, len(p.locators))
	copy(out, p.locators)
	return out
}

// Start runs the purchase phase immediately and schedules the pump loop.
func (p *SMSPumper) Start() {
	p.sched.ScheduleAfter(time.Second, func(now time.Time) {
		p.purchase(now)
		p.sched.Schedule(now.Add(p.nextGap()), p.pump)
	})
}

// purchase buys the e-tickets (hold + confirm with a stolen card) the pump
// phase will leverage.
func (p *SMSPumper) purchase(time.Time) {
	for i := 0; len(p.locators) < p.cfg.Tickets && i < p.cfg.Tickets*4; i++ {
		ctx := p.clientContext("")
		hold, err := p.resv.RequestHold(ctx, booking.HoldRequest{
			Flight:     p.cfg.Flight,
			Passengers: []names.Identity{p.gen.Garbage()},
			ActorID:    ctx.ClientKey,
		})
		if err != nil {
			continue
		}
		ticket, err := p.resv.Confirm(ctx, hold.ID)
		if err != nil {
			continue
		}
		p.locators = append(p.locators, ticket.RecordLocator)
	}
}

func (p *SMSPumper) nextGap() time.Duration {
	return time.Duration(p.rng.Exp(float64(p.cfg.SendInterval)))
}

func (p *SMSPumper) pump(now time.Time) {
	if p.stopped || !now.Before(p.cfg.Until) || len(p.locators) == 0 {
		p.stopped = true
		return
	}
	code := p.countries[p.chooser.Draw(p.rng)]
	country, ok := p.registry.Lookup(code)
	if !ok {
		p.sched.Schedule(now.Add(p.nextGap()), p.pump)
		return
	}
	plan := geo.PlanFor(country)
	var to geo.MSISDN
	if p.rng.Bool(p.cfg.PremiumShare) {
		to = plan.RandomPremium(p.rng)
	} else {
		to = plan.Random(p.rng)
	}
	locator := p.locators[p.rng.Intn(len(p.locators))]
	ctx := p.clientContext(code)

	p.attempts++
	err := p.smst.SendBoardingPass(ctx, locator, to)
	switch {
	case err == nil:
		p.sent++
	case errors.Is(err, app.ErrBlocked):
		p.blocked++
		// Fingerprint rotation is cheap for this crew; they rotate fast and
		// keep pumping.
		p.rotator.Rotate()
		p.rotations++
		p.clientSeq++
	case errors.Is(err, app.ErrRateLimited):
		p.rateLimited++
		// Back off for a while, then probe again.
		p.sched.Schedule(now.Add(30*time.Minute), p.pump)
		return
	case errors.Is(err, app.ErrChallengeFailed):
		// Failed solve: buy another one shortly.
		p.sched.Schedule(now.Add(time.Duration(20+p.rng.Intn(40))*time.Second), p.pump)
		return
	case errors.Is(err, app.ErrRestricted):
		// Feature removed: the paper's campaign ended when the SMS option
		// was pulled. Probe occasionally in case it returns.
		p.sched.Schedule(now.Add(6*time.Hour), p.pump)
		return
	}
	p.sched.Schedule(now.Add(p.nextGap()), p.pump)
}

// clientContext builds the request context. When a destination country is
// given, the exit IP is drawn from that country's residential pool — the
// geo-matching the paper highlights.
func (p *SMSPumper) clientContext(destCountry string) app.ClientContext {
	country := destCountry
	if country == "" {
		country = "FR" // purchase phase exits from a generic market
	}
	sess, ok := p.sessions[country]
	if !ok {
		sess = p.proxies.NewSession(country, proxy.RotatePerRequest)
		p.sessions[country] = sess
	}
	return app.ClientContext{
		IP:          sess.Addr(),
		Fingerprint: p.rotator.Current(),
		ClientKey:   p.cfg.ID + "-c" + strconv.Itoa(p.clientSeq),
		Actor:       weblog.ActorSMSPumper,
		ActorID:     p.cfg.ID,
	}
}
