// Package simrand provides deterministic pseudo-random numbers and the
// distributions the workload and attack generators draw from.
//
// All randomness in the framework flows from a seeded RNG so that every
// scenario is bit-for-bit reproducible. Sub-streams derived with Derive are
// independent of the draw order in sibling streams, which keeps experiments
// stable when one component adds or removes draws.
package simrand

import (
	"hash/fnv"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on SplitMix64.
// The zero value is a valid generator seeded with 0, but callers should
// prefer New to make seeding explicit. RNG is not safe for concurrent use;
// derive one stream per simulated actor instead of sharing.
type RNG struct {
	seed  uint64
	state uint64

	// Box-Muller cache for NormFloat64.
	hasSpare bool
	spare    float64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed}
}

// Derive returns a new RNG whose stream is a pure function of this RNG's
// seed and the label, independent of how many values have been drawn from
// the parent. Use it to give each simulated actor its own stream.
func (r *RNG) Derive(label string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], r.seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	return New(mix(h.Sum64()))
}

func putUint64(b []byte, v uint64) {
	for i := range 8 {
		b[i] = byte(v >> (8 * i))
	}
}

// mix is the SplitMix64 output function, used to whiten derived seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand; simulation code treats that as a programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntBetween returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("simrand: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard-normal variate (Box–Muller with caching).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponential variate with the given mean (= 1/rate).
// It panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("simrand: Exp with non-positive mean")
	}
	return mean * r.ExpFloat64()
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses a normal approximation, which is accurate enough for traffic volumes.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	// Knuth's algorithm.
	limit := math.Exp(-mean)
	p := 1.0
	k := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Zipf returns a Zipf-distributed rank in [0, n) with exponent s >= 0 via
// inverse-CDF over precomputed weights; use NewZipf for repeated draws.
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Draw(r)
}

// Zipf draws ranks with probability proportional to 1/(rank+1)^s.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with exponent s. It panics if
// n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrand: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := range n {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// Draw returns a rank in [0, len(cdf)).
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Categorical draws indices with the given non-negative weights.
type Categorical struct {
	cdf []float64
}

// NewCategorical builds a sampler over weights. It panics if weights is
// empty or sums to zero, which would make the distribution undefined.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("simrand: Categorical with no weights")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		cdf[i] = total
	}
	if total <= 0 {
		panic("simrand: Categorical weights sum to zero")
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Categorical{cdf: cdf}
}

// Draw returns an index in [0, len(weights)).
func (c *Categorical) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pick returns a uniformly chosen element of s. It panics on an empty slice.
func Pick[T any](r *RNG, s []T) T {
	if len(s) == 0 {
		panic("simrand: Pick from empty slice")
	}
	return s[r.Intn(len(s))]
}
