package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := range 1000 {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for range 100 {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestDeriveIndependentOfParentDraws(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // extra draw must not change derived streams
	d1 := p1.Derive("actor-1")
	d2 := p2.Derive("actor-1")
	for i := range 100 {
		if d1.Uint64() != d2.Uint64() {
			t.Fatalf("derived streams diverged at draw %d", i)
		}
	}
}

func TestDeriveLabelsDisjoint(t *testing.T) {
	p := New(7)
	d1 := p.Derive("a")
	d2 := p.Derive("b")
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("different labels produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for range 10000 {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	seen := make(map[int]bool)
	for range 10000 {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntBetweenInclusive(t *testing.T) {
	r := New(5)
	sawLo, sawHi := false, false
	for range 10000 {
		v := r.IntBetween(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntBetween(2,5) = %d", v)
		}
		sawLo = sawLo || v == 2
		sawHi = sawHi || v == 5
	}
	if !sawLo || !sawHi {
		t.Fatal("IntBetween never hit an endpoint")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	n := 100000
	hits := 0
	for range n {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for range n {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(10)
	n := 200000
	sum := 0.0
	for range n {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 30, 200} {
		r := New(11)
		n := 50000
		sum := 0
		for range n {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(12)
	for range 10000 {
		if r.Poisson(100) < 0 {
			t.Fatal("Poisson returned negative")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(10, 1.2)
	counts := make([]int, 10)
	for range 100000 {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[4] {
		t.Fatalf("Zipf not monotone enough: %v", counts)
	}
}

func TestCategoricalWeights(t *testing.T) {
	r := New(14)
	c := NewCategorical([]float64{1, 3, 6})
	counts := make([]int, 3)
	n := 100000
	for range n {
		counts[c.Draw(r)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight %d rate = %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight Categorical did not panic")
		}
	}()
	NewCategorical([]float64{0, 0})
}

func TestCategoricalIgnoresNegativeWeights(t *testing.T) {
	r := New(15)
	c := NewCategorical([]float64{-5, 1})
	for range 1000 {
		if c.Draw(r) != 1 {
			t.Fatal("negative weight was drawn")
		}
	}
}

func TestPick(t *testing.T) {
	r := New(16)
	s := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for range 1000 {
		seen[Pick(r, s)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick covered %d of 3 elements", len(seen))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for range 10000 {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal returned non-positive value")
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		s := []int{1, 2, 3, 4, 5, 6, 7, 8}
		sum := 0
		r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		for _, v := range s {
			sum += v
		}
		return sum == 36
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
