// Package fingerprint models browser/device fingerprints and the
// evasion-versus-detection dynamics the paper describes: attackers rotate or
// spoof their fingerprints to defeat knowledge-based blocking, while
// defenders hash fingerprints into block rules and hunt for internal
// inconsistencies in manipulated ones.
//
// A fingerprint here is a typed attribute vector rather than raw HTTP
// headers: the detection/evasion dynamics depend only on distinguishability,
// rotation cadence, and cross-attribute consistency, all of which the vector
// form preserves.
package fingerprint

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"funabuse/internal/simrand"
)

// Browser families observed in the simulated population.
const (
	BrowserChrome  = "Chrome"
	BrowserFirefox = "Firefox"
	BrowserSafari  = "Safari"
	BrowserEdge    = "Edge"
)

// Operating systems observed in the simulated population.
const (
	OSWindows = "Windows"
	OSMacOS   = "macOS"
	OSLinux   = "Linux"
	OSAndroid = "Android"
	OSIOS     = "iOS"
)

// Fingerprint is the attribute vector a client presents. Comparable by
// value; Hash gives the canonical identifier used in block rules.
type Fingerprint struct {
	Browser        string
	BrowserVersion int
	OS             string
	ScreenW        int
	ScreenH        int
	Timezone       string
	Language       string
	Cores          int
	MemoryGB       int
	TouchPoints    int
	CanvasHash     uint32
	WebGLHash      uint32
	FontCount      int
	PluginCount    int
	// Webdriver reports the navigator.webdriver instrumentation artifact
	// left by naive headless automation.
	Webdriver bool
}

// Hash returns a stable 64-bit digest of the full attribute vector.
func (f Fingerprint) Hash() uint64 {
	h := fnv.New64a()
	write := func(s string) { _, _ = h.Write([]byte(s)); _, _ = h.Write([]byte{0}) }
	write(f.Browser)
	write(strconv.Itoa(f.BrowserVersion))
	write(f.OS)
	write(strconv.Itoa(f.ScreenW))
	write(strconv.Itoa(f.ScreenH))
	write(f.Timezone)
	write(f.Language)
	write(strconv.Itoa(f.Cores))
	write(strconv.Itoa(f.MemoryGB))
	write(strconv.Itoa(f.TouchPoints))
	write(strconv.FormatUint(uint64(f.CanvasHash), 16))
	write(strconv.FormatUint(uint64(f.WebGLHash), 16))
	write(strconv.Itoa(f.FontCount))
	write(strconv.Itoa(f.PluginCount))
	write(strconv.FormatBool(f.Webdriver))
	return h.Sum64()
}

// String renders a short human-readable summary.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s/%d on %s %dx%d tz=%s lang=%s",
		f.Browser, f.BrowserVersion, f.OS, f.ScreenW, f.ScreenH, f.Timezone, f.Language)
}

// UserAgent renders a plausible User-Agent string for logging surfaces.
func (f Fingerprint) UserAgent() string {
	var b strings.Builder
	b.WriteString("Mozilla/5.0 (")
	switch f.OS {
	case OSWindows:
		b.WriteString("Windows NT 10.0; Win64; x64")
	case OSMacOS:
		b.WriteString("Macintosh; Intel Mac OS X 10_15_7")
	case OSLinux:
		b.WriteString("X11; Linux x86_64")
	case OSAndroid:
		b.WriteString("Linux; Android 13")
	case OSIOS:
		b.WriteString("iPhone; CPU iPhone OS 16_5 like Mac OS X")
	default:
		b.WriteString(f.OS)
	}
	b.WriteString(") ")
	fmt.Fprintf(&b, "%s/%d.0", f.Browser, f.BrowserVersion)
	return b.String()
}

type screen struct{ w, h int }

// Population-calibrated attribute marginals. Weights approximate public
// browser/OS market-share shapes; exact values are immaterial — what matters
// for the experiments is that some configurations are common (good spoof
// targets) and the long tail is rare.
var (
	browserChoices = []string{BrowserChrome, BrowserFirefox, BrowserSafari, BrowserEdge}
	browserWeights = []float64{0.63, 0.07, 0.20, 0.10}

	osByBrowser = map[string][]string{
		BrowserChrome:  {OSWindows, OSMacOS, OSLinux, OSAndroid},
		BrowserFirefox: {OSWindows, OSMacOS, OSLinux},
		BrowserSafari:  {OSMacOS, OSIOS},
		BrowserEdge:    {OSWindows, OSMacOS},
	}
	osWeightsByBrowser = map[string][]float64{
		BrowserChrome:  {0.55, 0.15, 0.05, 0.25},
		BrowserFirefox: {0.70, 0.15, 0.15},
		BrowserSafari:  {0.40, 0.60},
		BrowserEdge:    {0.92, 0.08},
	}

	desktopScreens = []screen{{1920, 1080}, {1366, 768}, {1536, 864}, {2560, 1440}, {1440, 900}, {1280, 720}}
	desktopWeights = []float64{0.35, 0.18, 0.12, 0.12, 0.13, 0.10}
	mobileScreens  = []screen{{390, 844}, {393, 873}, {412, 915}, {360, 800}, {414, 896}}
	mobileWeights  = []float64{0.25, 0.20, 0.20, 0.20, 0.15}

	timezones = []string{
		"Europe/Paris", "Europe/London", "America/New_York", "Asia/Singapore",
		"Asia/Shanghai", "Asia/Bangkok", "Europe/Madrid", "America/Sao_Paulo",
		"Asia/Tokyo", "Australia/Sydney",
	}
	languages = []string{"en-US", "en-GB", "fr-FR", "de-DE", "es-ES", "zh-CN", "th-TH", "pt-BR", "ja-JP", "it-IT"}

	coreChoices = []int{2, 4, 8, 12, 16}
	coreWeights = []float64{0.10, 0.40, 0.35, 0.10, 0.05}
	memChoices  = []int{4, 8, 16, 32}
	memWeights  = []float64{0.20, 0.45, 0.30, 0.05}
)

// Generator draws fingerprints from the simulated user population.
type Generator struct {
	rng      *simrand.RNG
	browser  *simrand.Categorical
	desktop  *simrand.Categorical
	mobile   *simrand.Categorical
	cores    *simrand.Categorical
	memory   *simrand.Categorical
	osChoice map[string]*simrand.Categorical
}

// NewGenerator returns a Generator drawing from r.
func NewGenerator(r *simrand.RNG) *Generator {
	osChoice := make(map[string]*simrand.Categorical, len(osByBrowser))
	for b, ws := range osWeightsByBrowser {
		osChoice[b] = simrand.NewCategorical(ws)
	}
	return &Generator{
		rng:      r,
		browser:  simrand.NewCategorical(browserWeights),
		desktop:  simrand.NewCategorical(desktopWeights),
		mobile:   simrand.NewCategorical(mobileWeights),
		cores:    simrand.NewCategorical(coreWeights),
		memory:   simrand.NewCategorical(memWeights),
		osChoice: osChoice,
	}
}

// Organic returns a consistent fingerprint as a real browser would present.
func (g *Generator) Organic() Fingerprint {
	browser := browserChoices[g.browser.Draw(g.rng)]
	os := osByBrowser[browser][g.osChoice[browser].Draw(g.rng)]
	mobile := os == OSAndroid || os == OSIOS

	var sc screen
	if mobile {
		sc = mobileScreens[g.mobile.Draw(g.rng)]
	} else {
		sc = desktopScreens[g.desktop.Draw(g.rng)]
	}
	touch := 0
	if mobile {
		touch = 5
	}
	f := Fingerprint{
		Browser:        browser,
		BrowserVersion: 100 + g.rng.Intn(30),
		OS:             os,
		ScreenW:        sc.w,
		ScreenH:        sc.h,
		Timezone:       simrand.Pick(g.rng, timezones),
		Language:       simrand.Pick(g.rng, languages),
		Cores:          coreChoices[g.cores.Draw(g.rng)],
		MemoryGB:       memChoices[g.memory.Draw(g.rng)],
		TouchPoints:    touch,
		FontCount:      40 + g.rng.Intn(200),
		PluginCount:    g.pluginsFor(browser),
	}
	f.CanvasHash = g.renderHash(f, "canvas")
	f.WebGLHash = g.renderHash(f, "webgl")
	return f
}

// NaiveHeadless returns the fingerprint a vanilla instrumentation framework
// presents: a consistent body but with the webdriver artifact set and the
// sparse font/plugin surface of a headless build. This is what trivial
// knowledge-based checks catch.
func (g *Generator) NaiveHeadless() Fingerprint {
	f := g.Organic()
	f.OS = OSLinux
	f.Browser = BrowserChrome
	f.Webdriver = true
	f.FontCount = 4 + g.rng.Intn(6)
	f.PluginCount = 0
	f.TouchPoints = 0
	f.CanvasHash = g.renderHash(f, "canvas")
	f.WebGLHash = g.renderHash(f, "webgl")
	return f
}

// pluginsFor returns a plausible navigator.plugins length.
func (g *Generator) pluginsFor(browser string) int {
	if browser == BrowserSafari {
		return 0
	}
	return 2 + g.rng.Intn(4)
}

// renderHash derives the canvas/WebGL rendering hash from the hardware- and
// software-determining attributes. Two clients with identical stacks render
// identically, which is what lets the consistency validator spot spoofed
// attribute combinations whose rendering does not match.
func (g *Generator) renderHash(f Fingerprint, surface string) uint32 {
	return RenderHash(f, surface)
}

// RenderHash is the deterministic rendering function of the simulated
// graphics stack: a pure function of (browser, version band, OS, cores,
// memory) and the surface name.
func RenderHash(f Fingerprint, surface string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(surface))
	_, _ = h.Write([]byte(f.Browser))
	_, _ = h.Write([]byte(strconv.Itoa(f.BrowserVersion / 10))) // version band
	_, _ = h.Write([]byte(f.OS))
	_, _ = h.Write([]byte(strconv.Itoa(f.Cores)))
	_, _ = h.Write([]byte(strconv.Itoa(f.MemoryGB)))
	return h.Sum32()
}
