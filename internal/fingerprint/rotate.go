package fingerprint

import (
	"time"

	"funabuse/internal/simrand"
)

// Rotator implements the fingerprint-rotation evasion the paper measured:
// the Airline A attackers presented a new identity "within an average of
// 5.3 hours" of each new blocking rule. The rotator supports both
// time-driven rotation and reactive rotation after a block.
type Rotator struct {
	rng *simrand.RNG
	gen *Generator

	current Fingerprint
	// reactionMean is the mean delay between being blocked and presenting
	// a rotated fingerprint. The paper's measured mean is 5.3 h.
	reactionMean time.Duration
	rotations    int
	spoof        bool
}

// RotatorOption configures a Rotator.
type RotatorOption func(*Rotator)

// WithReactionMean sets the mean block-to-rotation delay.
func WithReactionMean(d time.Duration) RotatorOption {
	return func(ro *Rotator) { ro.reactionMean = d }
}

// WithSpoofing makes rotations draw from the organic population (mimicking
// real users) instead of perturbing attributes, and strips automation
// artifacts. Spoofed prints blend into common configurations but risk
// internal inconsistencies that Validate can catch.
func WithSpoofing() RotatorOption {
	return func(ro *Rotator) { ro.spoof = true }
}

// DefaultReactionMean matches the paper's measured 5.3-hour average
// fingerprint-rotation interval.
const DefaultReactionMean = 5*time.Hour + 18*time.Minute

// NewRotator returns a Rotator starting from an initial fingerprint drawn
// from gen.
func NewRotator(r *simrand.RNG, gen *Generator, opts ...RotatorOption) *Rotator {
	ro := &Rotator{
		rng:          r,
		gen:          gen,
		reactionMean: DefaultReactionMean,
	}
	for _, opt := range opts {
		opt(ro)
	}
	if ro.spoof {
		ro.current = gen.Organic()
	} else {
		ro.current = gen.NaiveHeadless()
	}
	return ro
}

// Current returns the fingerprint currently presented.
func (ro *Rotator) Current() Fingerprint { return ro.current }

// Rotations returns how many times the identity has changed.
func (ro *Rotator) Rotations() int { return ro.rotations }

// ReactionDelay draws the delay between a block and the next rotation.
// Delays are exponential around the configured mean, floored at 15 minutes:
// even a fully automated operation needs time to notice the block and
// redeploy.
func (ro *Rotator) ReactionDelay() time.Duration {
	const floor = 15 * time.Minute
	d := time.Duration(ro.rng.Exp(float64(ro.reactionMean)))
	if d < floor {
		d = floor
	}
	return d
}

// Rotate presents a new identity and returns it. In spoof mode the new
// print is a fresh draw from the organic population with automation
// artifacts stripped; otherwise it perturbs a handful of attributes, the
// cheap rotation commodity bots perform.
func (ro *Rotator) Rotate() Fingerprint {
	ro.rotations++
	if ro.spoof {
		f := ro.gen.Organic()
		f.Webdriver = false
		// Spoofing overwrites the reported attributes but the underlying
		// stack still renders with the bot's real configuration — the
		// inconsistency window Validate exploits. With probability 0.7 the
		// operator remembers to also fake the render hashes.
		if !ro.rng.Bool(0.7) {
			f.CanvasHash = RenderHash(ro.current, "canvas")
			f.WebGLHash = RenderHash(ro.current, "webgl")
		}
		ro.current = f
		return f
	}
	f := ro.current
	// Perturb 2-4 attributes.
	n := 2 + ro.rng.Intn(3)
	for range n {
		switch ro.rng.Intn(6) {
		case 0:
			f.BrowserVersion = 100 + ro.rng.Intn(30)
		case 1:
			f.Language = simrand.Pick(ro.rng, languages)
		case 2:
			f.Timezone = simrand.Pick(ro.rng, timezones)
		case 3:
			sc := desktopScreens[ro.rng.Intn(len(desktopScreens))]
			f.ScreenW, f.ScreenH = sc.w, sc.h
		case 4:
			f.FontCount = 4 + ro.rng.Intn(240)
		case 5:
			f.Cores = coreChoices[ro.rng.Intn(len(coreChoices))]
		}
	}
	f.CanvasHash = RenderHash(f, "canvas")
	f.WebGLHash = RenderHash(f, "webgl")
	if f.Hash() == ro.current.Hash() {
		// Guarantee the rotation actually changed the identity.
		f.BrowserVersion++
		f.CanvasHash = RenderHash(f, "canvas")
		f.WebGLHash = RenderHash(f, "webgl")
	}
	ro.current = f
	return f
}

// Inconsistency identifies one cross-attribute contradiction in a
// fingerprint.
type Inconsistency struct {
	// Check is a short machine-readable name.
	Check string
	// Detail is a human-readable explanation.
	Detail string
}

// Validate runs the consistency checks (in the spirit of FP-inconsistent)
// and returns every contradiction found. An organic fingerprint returns
// none.
func Validate(f Fingerprint) []Inconsistency {
	var out []Inconsistency
	add := func(check, detail string) {
		out = append(out, Inconsistency{Check: check, Detail: detail})
	}

	if f.Webdriver {
		add("webdriver", "navigator.webdriver artifact present")
	}
	mobile := f.OS == OSAndroid || f.OS == OSIOS
	if mobile && f.TouchPoints == 0 {
		add("touch-mobile", "mobile OS with zero touch points")
	}
	if !mobile && f.TouchPoints > 0 {
		add("touch-desktop", "desktop OS reporting touch points")
	}
	if mobile && f.ScreenW > 1000 {
		add("screen-mobile", "mobile OS with desktop-class screen width")
	}
	if !mobile && f.ScreenW < 1000 {
		add("screen-desktop", "desktop OS with mobile-class screen width")
	}
	if f.Browser == BrowserSafari && (f.OS == OSWindows || f.OS == OSLinux || f.OS == OSAndroid) {
		add("safari-os", "Safari reported on a non-Apple OS")
	}
	if f.Browser == BrowserEdge && (f.OS == OSLinux || f.OS == OSAndroid || f.OS == OSIOS) {
		add("edge-os", "Edge reported on an unsupported OS")
	}
	if f.Browser == BrowserSafari && f.PluginCount > 0 {
		add("safari-plugins", "Safari reporting plugins")
	}
	if f.CanvasHash != RenderHash(f, "canvas") {
		add("canvas-render", "canvas hash does not match reported stack")
	}
	if f.WebGLHash != RenderHash(f, "webgl") {
		add("webgl-render", "WebGL hash does not match reported stack")
	}
	if f.FontCount < 10 && !mobile {
		add("font-surface", "desktop browser with headless-sized font set")
	}
	return out
}

// Consistent reports whether Validate finds no contradictions.
func Consistent(f Fingerprint) bool { return len(Validate(f)) == 0 }
