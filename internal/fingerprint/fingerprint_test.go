package fingerprint

import (
	"testing"
	"testing/quick"
	"time"

	"funabuse/internal/simrand"
)

func TestOrganicFingerprintsAreConsistent(t *testing.T) {
	g := NewGenerator(simrand.New(1))
	for i := range 500 {
		f := g.Organic()
		if inc := Validate(f); len(inc) != 0 {
			t.Fatalf("organic fingerprint %d inconsistent: %+v (%s)", i, inc, f)
		}
	}
}

func TestNaiveHeadlessIsCaught(t *testing.T) {
	g := NewGenerator(simrand.New(2))
	for range 100 {
		f := g.NaiveHeadless()
		if Consistent(f) {
			t.Fatalf("naive headless fingerprint passed validation: %s", f)
		}
		found := false
		for _, inc := range Validate(f) {
			if inc.Check == "webdriver" {
				found = true
			}
		}
		if !found {
			t.Fatal("webdriver artifact not flagged")
		}
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	g := NewGenerator(simrand.New(3))
	f := g.Organic()
	if f.Hash() != f.Hash() {
		t.Fatal("hash not stable")
	}
	f2 := f
	f2.Language = f.Language + "x"
	if f.Hash() == f2.Hash() {
		t.Fatal("hash insensitive to language change")
	}
}

func TestHashDistribution(t *testing.T) {
	g := NewGenerator(simrand.New(4))
	seen := make(map[uint64]bool)
	n := 2000
	for range n {
		seen[g.Organic().Hash()] = true
	}
	// The organic population is diverse; most draws should be distinct.
	if len(seen) < n*7/10 {
		t.Fatalf("only %d/%d distinct hashes", len(seen), n)
	}
}

func TestRotateChangesHash(t *testing.T) {
	r := simrand.New(5)
	ro := NewRotator(r, NewGenerator(r.Derive("gen")))
	prev := ro.Current().Hash()
	for i := range 100 {
		f := ro.Rotate()
		if f.Hash() == prev {
			t.Fatalf("rotation %d did not change hash", i)
		}
		prev = f.Hash()
	}
	if ro.Rotations() != 100 {
		t.Fatalf("Rotations() = %d", ro.Rotations())
	}
}

func TestNaiveRotationKeepsWebdriverArtifact(t *testing.T) {
	r := simrand.New(6)
	ro := NewRotator(r, NewGenerator(r.Derive("gen")))
	for range 20 {
		f := ro.Rotate()
		if !f.Webdriver {
			t.Fatal("naive rotation unexpectedly stripped webdriver artifact")
		}
	}
}

func TestSpoofedRotationStripsArtifactsButLeaksRenderMismatch(t *testing.T) {
	r := simrand.New(7)
	ro := NewRotator(r, NewGenerator(r.Derive("gen")), WithSpoofing())
	mismatches := 0
	n := 1000
	for range n {
		f := ro.Rotate()
		if f.Webdriver {
			t.Fatal("spoofed rotation kept webdriver artifact")
		}
		for _, inc := range Validate(f) {
			if inc.Check == "canvas-render" || inc.Check == "webgl-render" {
				mismatches++
				break
			}
		}
	}
	// ~30% of spoofs forget to fake the render hashes.
	if mismatches < n/5 || mismatches > n/2 {
		t.Fatalf("render mismatches = %d/%d, want ~30%%", mismatches, n)
	}
}

func TestReactionDelayMeanMatchesPaper(t *testing.T) {
	r := simrand.New(8)
	ro := NewRotator(r, NewGenerator(r.Derive("gen")))
	n := 20000
	var total time.Duration
	for range n {
		total += ro.ReactionDelay()
	}
	mean := total / time.Duration(n)
	// Exponential with 15-minute floor around 5.3 h: mean should land within
	// 10% of 5.3 h.
	lo, hi := time.Duration(float64(DefaultReactionMean)*0.9), time.Duration(float64(DefaultReactionMean)*1.1)
	if mean < lo || mean > hi {
		t.Fatalf("mean reaction delay %v not within 10%% of %v", mean, DefaultReactionMean)
	}
}

func TestReactionDelayFloor(t *testing.T) {
	r := simrand.New(9)
	ro := NewRotator(r, NewGenerator(r.Derive("gen")), WithReactionMean(time.Minute))
	for range 1000 {
		if d := ro.ReactionDelay(); d < 15*time.Minute {
			t.Fatalf("reaction delay %v below floor", d)
		}
	}
}

func TestValidateSpecificContradictions(t *testing.T) {
	g := NewGenerator(simrand.New(10))
	base := g.Organic()
	// Force a desktop Chrome base for predictable checks.
	base.Browser = BrowserChrome
	base.OS = OSWindows
	base.TouchPoints = 0
	base.ScreenW, base.ScreenH = 1920, 1080
	base.FontCount = 120
	base.PluginCount = 3
	base.Webdriver = false
	base.CanvasHash = RenderHash(base, "canvas")
	base.WebGLHash = RenderHash(base, "webgl")
	if !Consistent(base) {
		t.Fatalf("base print inconsistent: %+v", Validate(base))
	}

	cases := []struct {
		name  string
		mut   func(f Fingerprint) Fingerprint
		check string
	}{
		{"safari on windows", func(f Fingerprint) Fingerprint {
			f.Browser = BrowserSafari
			f.PluginCount = 0
			f.CanvasHash = RenderHash(f, "canvas") // recompute so only OS check fires
			f.WebGLHash = RenderHash(f, "webgl")
			return f
		}, "safari-os"},
		{"touch on desktop", func(f Fingerprint) Fingerprint { f.TouchPoints = 5; return f }, "touch-desktop"},
		{"mobile without touch", func(f Fingerprint) Fingerprint {
			f.OS = OSAndroid
			f.ScreenW = 390
			f.CanvasHash = RenderHash(f, "canvas")
			f.WebGLHash = RenderHash(f, "webgl")
			return f
		}, "touch-mobile"},
		{"stale canvas", func(f Fingerprint) Fingerprint { f.CanvasHash++; return f }, "canvas-render"},
		{"headless font set", func(f Fingerprint) Fingerprint { f.FontCount = 5; return f }, "font-surface"},
	}
	for _, tc := range cases {
		f := tc.mut(base)
		found := false
		for _, inc := range Validate(f) {
			if inc.Check == tc.check {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: check %q not triggered (got %+v)", tc.name, tc.check, Validate(f))
		}
	}
}

func TestUserAgentMentionsBrowserAndOSMarker(t *testing.T) {
	f := Fingerprint{Browser: BrowserChrome, BrowserVersion: 120, OS: OSWindows}
	ua := f.UserAgent()
	if ua == "" || len(ua) < 20 {
		t.Fatalf("UserAgent too short: %q", ua)
	}
	for _, want := range []string{"Chrome/120.0", "Windows NT"} {
		if !contains(ua, want) {
			t.Errorf("UserAgent %q missing %q", ua, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestRenderHashPureFunction(t *testing.T) {
	f := func(browser uint8, version uint8, cores uint8) bool {
		fp := Fingerprint{
			Browser:        browserChoices[int(browser)%len(browserChoices)],
			BrowserVersion: 100 + int(version)%30,
			OS:             OSWindows,
			Cores:          coreChoices[int(cores)%len(coreChoices)],
			MemoryGB:       8,
		}
		return RenderHash(fp, "canvas") == RenderHash(fp, "canvas") &&
			RenderHash(fp, "canvas") != RenderHash(fp, "webgl")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotatorDeterminism(t *testing.T) {
	mk := func() []uint64 {
		r := simrand.New(77)
		ro := NewRotator(r, NewGenerator(r.Derive("gen")), WithSpoofing())
		var hashes []uint64
		for range 20 {
			hashes = append(hashes, ro.Rotate().Hash())
		}
		return hashes
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rotation sequence diverged at %d", i)
		}
	}
}
