package fingerprint

import (
	"math"
	"sort"
)

// PopulationStats summarises the distinguishability of a fingerprint
// population — the quantity that decides whether fingerprinting can track
// an individual device (large anonymity sets mean it cannot) and which
// configurations a spoofing bot should imitate to blend in.
type PopulationStats struct {
	// Size is the population size.
	Size int
	// Distinct is the number of distinct full-vector hashes.
	Distinct int
	// UniqueShare is the fraction of the population whose exact
	// fingerprint appears only once (fully trackable devices).
	UniqueShare float64
	// EntropyBits is the Shannon entropy of the hash distribution.
	EntropyBits float64
	// MedianAnonymitySet is the median size of the set of devices sharing
	// a fingerprint.
	MedianAnonymitySet int
}

// ConfigCount is one fingerprint equivalence class and its population.
type ConfigCount struct {
	Hash  uint64
	Count int
}

// AnalyzePopulation computes distinguishability statistics over a set of
// fingerprints.
func AnalyzePopulation(prints []Fingerprint) PopulationStats {
	var stats PopulationStats
	stats.Size = len(prints)
	if stats.Size == 0 {
		return stats
	}
	counts := make(map[uint64]int, len(prints))
	for _, f := range prints {
		counts[f.Hash()]++
	}
	stats.Distinct = len(counts)

	unique := 0
	setSizes := make([]int, 0, len(prints))
	n := float64(stats.Size)
	for _, c := range counts {
		if c == 1 {
			unique++
		}
		p := float64(c) / n
		stats.EntropyBits -= p * math.Log2(p)
		for range c {
			setSizes = append(setSizes, c)
		}
	}
	stats.UniqueShare = float64(unique) / n
	sort.Ints(setSizes)
	stats.MedianAnonymitySet = setSizes[len(setSizes)/2]
	return stats
}

// TopConfigs returns the k most common fingerprint classes in descending
// count order (ties by hash) — the spoofing targets that hide a bot in the
// largest crowds.
func TopConfigs(prints []Fingerprint, k int) []ConfigCount {
	counts := make(map[uint64]int, len(prints))
	for _, f := range prints {
		counts[f.Hash()]++
	}
	out := make([]ConfigCount, 0, len(counts))
	for h, c := range counts {
		out = append(out, ConfigCount{Hash: h, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Hash < out[j].Hash
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
