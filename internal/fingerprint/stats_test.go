package fingerprint

import (
	"math"
	"testing"

	"funabuse/internal/simrand"
)

func TestAnalyzePopulationUniform(t *testing.T) {
	g := NewGenerator(simrand.New(1))
	f := g.Organic()
	prints := []Fingerprint{f, f, f, f}
	stats := AnalyzePopulation(prints)
	if stats.Size != 4 || stats.Distinct != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.UniqueShare != 0 {
		t.Fatalf("UniqueShare %v for identical prints", stats.UniqueShare)
	}
	if stats.EntropyBits != 0 {
		t.Fatalf("entropy %v for one class", stats.EntropyBits)
	}
	if stats.MedianAnonymitySet != 4 {
		t.Fatalf("anonymity set %d", stats.MedianAnonymitySet)
	}
}

func TestAnalyzePopulationAllDistinct(t *testing.T) {
	prints := make([]Fingerprint, 8)
	g := NewGenerator(simrand.New(2))
	seen := map[uint64]bool{}
	for i := range prints {
		for {
			prints[i] = g.Organic()
			if !seen[prints[i].Hash()] {
				seen[prints[i].Hash()] = true
				break
			}
		}
	}
	stats := AnalyzePopulation(prints)
	if stats.Distinct != 8 || stats.UniqueShare != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if math.Abs(stats.EntropyBits-3) > 1e-9 {
		t.Fatalf("entropy %v, want 3 bits", stats.EntropyBits)
	}
	if stats.MedianAnonymitySet != 1 {
		t.Fatalf("anonymity set %d", stats.MedianAnonymitySet)
	}
}

func TestAnalyzePopulationEmpty(t *testing.T) {
	stats := AnalyzePopulation(nil)
	if stats.Size != 0 || stats.Distinct != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestOrganicPopulationIsHighEntropy(t *testing.T) {
	// The organic generator spans a large configuration space: full-vector
	// fingerprints are highly distinguishing (Laperdrix-style uniqueness),
	// which is exactly what makes exact-hash block rules precise — and
	// exactly why rotation defeats them.
	g := NewGenerator(simrand.New(3))
	prints := make([]Fingerprint, 5000)
	for i := range prints {
		prints[i] = g.Organic()
	}
	stats := AnalyzePopulation(prints)
	if stats.UniqueShare < 0.5 {
		t.Fatalf("UniqueShare %v, population unexpectedly clustered", stats.UniqueShare)
	}
	if stats.EntropyBits < 8 {
		t.Fatalf("entropy %v bits, population too uniform", stats.EntropyBits)
	}
	if stats.Distinct < 4000 {
		t.Fatalf("distinct %d of %d", stats.Distinct, stats.Size)
	}
}

func TestTopConfigsOrdering(t *testing.T) {
	g := NewGenerator(simrand.New(4))
	a, b := g.Organic(), g.Organic()
	prints := []Fingerprint{a, a, a, b, b, g.Organic()}
	top := TopConfigs(prints, 2)
	if len(top) != 2 {
		t.Fatalf("top has %d entries", len(top))
	}
	if top[0].Hash != a.Hash() || top[0].Count != 3 {
		t.Fatalf("top[0] %+v", top[0])
	}
	if top[1].Hash != b.Hash() || top[1].Count != 2 {
		t.Fatalf("top[1] %+v", top[1])
	}
	// k larger than classes returns all three classes.
	if got := len(TopConfigs(prints, 99)); got != 3 {
		t.Fatalf("TopConfigs(99) len %d", got)
	}
}

func TestSpoofingTargetsBigAnonymitySets(t *testing.T) {
	// A spoofing rotation hides in the organic population: its prints must
	// belong to configurations that actually occur there.
	r := simrand.New(5)
	gen := NewGenerator(r.Derive("pop"))
	population := make([]Fingerprint, 3000)
	hashes := map[uint64]bool{}
	for i := range population {
		population[i] = gen.Organic()
		hashes[population[i].Hash()] = true
	}
	// Spoofed prints are fresh draws from the same generator model; their
	// attribute combinations must validate like the population's.
	ro := NewRotator(r.Derive("rot"), NewGenerator(r.Derive("botgen")), WithSpoofing())
	for range 50 {
		f := ro.Rotate()
		if f.Webdriver {
			t.Fatal("spoofed print carries automation artifact")
		}
	}
}
