package sms

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"funabuse/internal/geo"
	"funabuse/internal/simrand"
)

// This file models the telephony settlement chain behind SMS pumping as
// the paper's Section II-B describes it: the application owner pays an
// aggregator (primary operator); the message transits to a terminating
// operator in the destination country, which earns a termination fee under
// intercarrier-compensation rules; fraudulent secondary operators register
// as terminators, collect the fees, and kick a share back to the attacker
// generating the traffic — sometimes never delivering the message at all.
//
// The Section V mitigation is modelled too: the primary operator can
// enforce stricter validation for newly registered terminators and
// withhold compensation on traffic the application flags as abusive.

// OperatorClass distinguishes the settlement roles.
type OperatorClass int

// Operator classes.
const (
	// OperatorPrimary is the aggregator the application contracts with.
	OperatorPrimary OperatorClass = iota + 1
	// OperatorTransit forwards between networks for a small margin.
	OperatorTransit
	// OperatorTerminating delivers into the destination network and earns
	// the termination fee.
	OperatorTerminating
)

// String names the class.
func (c OperatorClass) String() string {
	switch c {
	case OperatorPrimary:
		return "primary"
	case OperatorTransit:
		return "transit"
	case OperatorTerminating:
		return "terminating"
	default:
		return fmt.Sprintf("OperatorClass(%d)", int(c))
	}
}

// Operator is one settlement participant.
type Operator struct {
	ID      string
	Class   OperatorClass
	Country string
	// Colluding marks terminators that share revenue with traffic
	// generators. Ground truth for evaluation; the settlement system
	// cannot see it directly.
	Colluding bool
	// RegisteredAt is when the operator joined the chain; fraudulent
	// terminators are characteristically young.
	RegisteredAt time.Time
}

// Settlement is the per-message money split.
type Settlement struct {
	Message Message
	// TerminatorID is the operator that claimed termination.
	TerminatorID string
	// TerminationFeeUSD is what the terminator earned.
	TerminationFeeUSD float64
	// TransitFeeUSD is the middle-mile margin.
	TransitFeeUSD float64
	// KickbackUSD is what a colluding terminator returned to the traffic
	// generator.
	KickbackUSD float64
	// Withheld marks fees frozen by the compensation-withholding
	// mitigation.
	Withheld bool
	// Delivered reports whether the message actually reached a handset;
	// colluding terminators often short-stop traffic.
	Delivered bool
}

// ErrNoTerminator is returned when a destination has no registered
// terminating operator.
var ErrNoTerminator = errors.New("sms: no terminating operator for destination")

// Chain is the settlement network: operators per destination country and
// the ledger of per-message splits.
type Chain struct {
	rng      *simrand.RNG
	registry *geo.Registry

	terminators map[string][]*Operator // country -> candidates
	operators   map[string]*Operator
	ledger      []Settlement

	// validationAge is the minimum operator age before it may claim
	// termination fees (the "stricter validation for new secondary
	// operators" mitigation); zero disables.
	validationAge time.Duration
	// withholdFlagged freezes compensation on messages the application
	// flags as abusive.
	withholdFlagged bool
	// flagged actor IDs whose traffic is disputed.
	flagged map[string]bool

	nextID int
}

// NewChain returns an empty settlement network.
func NewChain(rng *simrand.RNG, registry *geo.Registry) *Chain {
	return &Chain{
		rng:         rng,
		registry:    registry,
		terminators: make(map[string][]*Operator),
		operators:   make(map[string]*Operator),
		flagged:     make(map[string]bool),
	}
}

// SetValidationAge enables the minimum-age rule for terminators.
func (c *Chain) SetValidationAge(d time.Duration) { c.validationAge = d }

// SetWithholdFlagged toggles compensation withholding on flagged traffic.
func (c *Chain) SetWithholdFlagged(v bool) { c.withholdFlagged = v }

// FlagActor marks an actor's traffic as disputed (fed by the application's
// fraud detection).
func (c *Chain) FlagActor(actorID string) { c.flagged[actorID] = true }

// RegisterTerminator adds a terminating operator for a country and returns
// it. Colluding marks the fraudulent-secondary-operator case.
func (c *Chain) RegisterTerminator(country string, colluding bool, at time.Time) *Operator {
	c.nextID++
	op := &Operator{
		ID:           fmt.Sprintf("term-%s-%d", country, c.nextID),
		Class:        OperatorTerminating,
		Country:      country,
		Colluding:    colluding,
		RegisteredAt: at,
	}
	c.terminators[country] = append(c.terminators[country], op)
	c.operators[op.ID] = op
	return op
}

// Operator resolves an operator by ID.
func (c *Chain) Operator(id string) (*Operator, bool) {
	op, ok := c.operators[id]
	return op, ok
}

// Settle routes one delivered message through the chain at the given
// instant and records the money split. Colluding terminators win the route
// when present and eligible: the attacker steers traffic toward them.
func (c *Chain) Settle(m Message, at time.Time) (Settlement, error) {
	candidates := c.terminators[m.Country]
	var eligible []*Operator
	for _, op := range candidates {
		if c.validationAge > 0 && at.Sub(op.RegisteredAt) < c.validationAge {
			continue
		}
		eligible = append(eligible, op)
	}
	if len(eligible) == 0 {
		return Settlement{}, ErrNoTerminator
	}
	// Prefer a colluding terminator (the attacker routes numbers it
	// controls); otherwise a uniform pick.
	var term *Operator
	for _, op := range eligible {
		if op.Colluding {
			term = op
			break
		}
	}
	if term == nil {
		term = eligible[c.rng.Intn(len(eligible))]
	}

	country, ok := c.registry.Lookup(m.Country)
	if !ok {
		return Settlement{}, ErrUnknownDestination
	}
	s := Settlement{
		Message:           m,
		TerminatorID:      term.ID,
		TerminationFeeUSD: m.CostUSD * 0.75,
		TransitFeeUSD:     m.CostUSD * 0.10,
		Delivered:         true,
	}
	if term.Colluding {
		s.KickbackUSD = s.TerminationFeeUSD * kickbackShare(country)
		// Short-stopping: a colluding terminator pockets the fee without
		// delivering roughly half the time — the paper notes the number's
		// owner "may be unaware that their number is used".
		s.Delivered = !c.rng.Bool(0.5)
	}
	if c.withholdFlagged && c.flagged[m.ActorID] {
		s.Withheld = true
		s.KickbackUSD = 0
	}
	c.ledger = append(c.ledger, s)
	return s, nil
}

// kickbackShare scales the revenue share by destination: high-cost routes
// support bigger kickbacks.
func kickbackShare(country geo.Country) float64 {
	return country.RevenueShare / 0.75 // expressed against the termination fee
}

// Ledger returns a copy of the settlements.
func (c *Chain) Ledger() []Settlement {
	out := make([]Settlement, len(c.ledger))
	copy(out, c.ledger)
	return out
}

// KickbackTo sums the kickbacks paid out for an actor's traffic.
func (c *Chain) KickbackTo(actorID string) float64 {
	var total float64
	for _, s := range c.ledger {
		if s.Message.ActorID == actorID && !s.Withheld {
			total += s.KickbackUSD
		}
	}
	return total
}

// WithheldUSD sums the frozen termination fees.
func (c *Chain) WithheldUSD() float64 {
	var total float64
	for _, s := range c.ledger {
		if s.Withheld {
			total += s.TerminationFeeUSD
		}
	}
	return total
}

// DeliveryRate returns the share of settled messages that actually reached
// a handset.
func (c *Chain) DeliveryRate() float64 {
	if len(c.ledger) == 0 {
		return 0
	}
	delivered := 0
	for _, s := range c.ledger {
		if s.Delivered {
			delivered++
		}
	}
	return float64(delivered) / float64(len(c.ledger))
}

// TerminatorReport summarises one terminator's settled traffic — the view
// a primary operator audits when hunting fraudulent secondaries.
type TerminatorReport struct {
	OperatorID string
	Messages   int
	FeesUSD    float64
	// DeliveryRate below ~1 on volume is the short-stopping tell.
	DeliveryRate float64
}

// TerminatorReports aggregates the ledger per terminator, sorted by
// descending fees.
func (c *Chain) TerminatorReports() []TerminatorReport {
	agg := make(map[string]*TerminatorReport)
	delivered := make(map[string]int)
	for _, s := range c.ledger {
		r, ok := agg[s.TerminatorID]
		if !ok {
			r = &TerminatorReport{OperatorID: s.TerminatorID}
			agg[s.TerminatorID] = r
		}
		r.Messages++
		if !s.Withheld {
			r.FeesUSD += s.TerminationFeeUSD
		}
		if s.Delivered {
			delivered[s.TerminatorID]++
		}
	}
	out := make([]TerminatorReport, 0, len(agg))
	for id, r := range agg {
		if r.Messages > 0 {
			r.DeliveryRate = float64(delivered[id]) / float64(r.Messages)
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FeesUSD != out[j].FeesUSD {
			return out[i].FeesUSD > out[j].FeesUSD
		}
		return out[i].OperatorID < out[j].OperatorID
	})
	return out
}
