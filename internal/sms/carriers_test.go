package sms

import (
	"errors"
	"math"
	"testing"
	"time"

	"funabuse/internal/geo"
	"funabuse/internal/simrand"
)

func chainFixture() *Chain {
	return NewChain(simrand.New(1), geo.Default())
}

func msgTo(country, actor string) Message {
	c := geo.Default().MustLookup(country)
	return Message{
		To:      geo.PlanFor(c).Random(simrand.New(2)),
		Country: country,
		Kind:    KindBoardingPass,
		CostUSD: c.TerminationUSD,
		ActorID: actor,
	}
}

func TestSettleSplitsMoney(t *testing.T) {
	c := chainFixture()
	c.RegisterTerminator("UZ", false, t0)
	s, err := c.Settle(msgTo("UZ", "legit"), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	uz := geo.Default().MustLookup("UZ")
	if math.Abs(s.TerminationFeeUSD-uz.TerminationUSD*0.75) > 1e-9 {
		t.Fatalf("termination fee %v", s.TerminationFeeUSD)
	}
	if math.Abs(s.TransitFeeUSD-uz.TerminationUSD*0.10) > 1e-9 {
		t.Fatalf("transit fee %v", s.TransitFeeUSD)
	}
	if s.KickbackUSD != 0 {
		t.Fatal("honest terminator paid a kickback")
	}
	if !s.Delivered {
		t.Fatal("honest terminator failed to deliver")
	}
}

func TestNoTerminatorError(t *testing.T) {
	c := chainFixture()
	_, err := c.Settle(msgTo("UZ", "x"), t0)
	if !errors.Is(err, ErrNoTerminator) {
		t.Fatalf("err = %v", err)
	}
}

func TestColludingTerminatorKicksBackAndShortStops(t *testing.T) {
	c := chainFixture()
	c.RegisterTerminator("UZ", true, t0)
	var kick float64
	delivered := 0
	n := 2000
	for range n {
		s, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		kick += s.KickbackUSD
		if s.Delivered {
			delivered++
		}
	}
	if kick <= 0 {
		t.Fatal("no kickback accrued")
	}
	if got := c.KickbackTo("attacker"); math.Abs(got-kick) > 1e-9 {
		t.Fatalf("KickbackTo = %v, want %v", got, kick)
	}
	// Short-stopping: roughly half the traffic never reaches a handset.
	rate := float64(delivered) / float64(n)
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("delivery rate %v, want ~0.5", rate)
	}
	if got := c.DeliveryRate(); math.Abs(got-rate) > 1e-9 {
		t.Fatalf("DeliveryRate = %v", got)
	}
}

func TestColludingTerminatorWinsRoute(t *testing.T) {
	c := chainFixture()
	honest := c.RegisterTerminator("UZ", false, t0)
	colluding := c.RegisterTerminator("UZ", true, t0)
	for range 50 {
		s, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if s.TerminatorID != colluding.ID {
			t.Fatalf("route went to %s, want colluding %s (honest %s)", s.TerminatorID, colluding.ID, honest.ID)
		}
	}
}

func TestValidationAgeExcludesYoungTerminators(t *testing.T) {
	c := chainFixture()
	c.SetValidationAge(30 * 24 * time.Hour)
	young := c.RegisterTerminator("UZ", true, t0)
	_ = young
	// A week after registration the young terminator is ineligible.
	if _, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(7*24*time.Hour)); !errors.Is(err, ErrNoTerminator) {
		t.Fatalf("young terminator settled: err = %v", err)
	}
	// An established honest terminator carries the traffic instead.
	old := c.RegisterTerminator("UZ", false, t0.Add(-365*24*time.Hour))
	s, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(7*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if s.TerminatorID != old.ID {
		t.Fatalf("route went to %s", s.TerminatorID)
	}
	if s.KickbackUSD != 0 {
		t.Fatal("honest route paid a kickback")
	}
	// Once the young operator matures it becomes eligible again.
	s, err = c.Settle(msgTo("UZ", "attacker"), t0.Add(40*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if s.KickbackUSD == 0 {
		t.Fatal("matured colluding terminator paid no kickback")
	}
}

func TestWithholdingFreezesFlaggedTraffic(t *testing.T) {
	c := chainFixture()
	c.RegisterTerminator("UZ", true, t0)
	c.SetWithholdFlagged(true)

	// Unflagged traffic pays out.
	if _, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	before := c.KickbackTo("attacker")
	if before <= 0 {
		t.Fatal("no kickback before flagging")
	}
	// After the application flags the actor, compensation freezes.
	c.FlagActor("attacker")
	for range 100 {
		if _, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(2*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.KickbackTo("attacker"); got != before {
		t.Fatalf("kickbacks grew after flagging: %v -> %v", before, got)
	}
	if c.WithheldUSD() <= 0 {
		t.Fatal("no fees withheld")
	}
}

func TestTerminatorReportsExposeShortStopping(t *testing.T) {
	c := chainFixture()
	honest := c.RegisterTerminator("GB", false, t0)
	colluding := c.RegisterTerminator("UZ", true, t0)
	for range 400 {
		if _, err := c.Settle(msgTo("GB", "legit"), t0.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Settle(msgTo("UZ", "attacker"), t0.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	reports := c.TerminatorReports()
	if len(reports) != 2 {
		t.Fatalf("reports %d", len(reports))
	}
	byID := map[string]TerminatorReport{}
	for _, r := range reports {
		byID[r.OperatorID] = r
	}
	if got := byID[honest.ID].DeliveryRate; got != 1 {
		t.Fatalf("honest delivery rate %v", got)
	}
	if got := byID[colluding.ID].DeliveryRate; got > 0.65 {
		t.Fatalf("colluding delivery rate %v, short-stopping should show", got)
	}
	// The audit signal: high fees with sub-unity delivery.
	if byID[colluding.ID].FeesUSD <= 0 {
		t.Fatal("colluding terminator earned nothing")
	}
}

func TestOperatorLookupAndClassString(t *testing.T) {
	c := chainFixture()
	op := c.RegisterTerminator("FR", false, t0)
	got, ok := c.Operator(op.ID)
	if !ok || got.Country != "FR" {
		t.Fatal("operator lookup failed")
	}
	if OperatorPrimary.String() != "primary" || OperatorTransit.String() != "transit" ||
		OperatorTerminating.String() != "terminating" {
		t.Fatal("class strings wrong")
	}
	if OperatorClass(9).String() != "OperatorClass(9)" {
		t.Fatal("unknown class string wrong")
	}
}

func TestLedgerIsCopy(t *testing.T) {
	c := chainFixture()
	c.RegisterTerminator("FR", false, t0)
	if _, err := c.Settle(msgTo("FR", "x"), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	l := c.Ledger()
	l[0].TerminationFeeUSD = 999
	if c.Ledger()[0].TerminationFeeUSD == 999 {
		t.Fatal("Ledger exposed internal slice")
	}
}
