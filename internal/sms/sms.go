// Package sms is the SMS-delivery substrate exploited by SMS Pumping.
//
// It models the full money flow the paper describes: the application owner
// pays a per-message termination price that depends on the destination
// country (and on whether the number sits in a premium range); colluding
// terminating operators kick a revenue share back to the fraudster; and the
// application has a contracted quota whose exhaustion locks out legitimate
// users — the collateral damage Section II-B highlights.
//
// Two application services sit on top of the raw gateway: an OTP service
// (the classic pumping target) and a boarding-pass-by-SMS service (the
// advanced Airline D target, reachable only with a valid record locator).
package sms

import (
	"errors"
	"fmt"
	"time"

	"funabuse/internal/geo"
	"funabuse/internal/simclock"
)

// Sentinel errors callers match on.
var (
	ErrUnknownDestination = errors.New("sms: destination country unknown")
	ErrQuotaExceeded      = errors.New("sms: contracted SMS quota exceeded")
	ErrFeatureDisabled    = errors.New("sms: feature disabled")
	ErrUnknownLocator     = errors.New("sms: unknown record locator")
)

// Kind classifies a message by the application feature that produced it.
type Kind int

// Message kinds.
const (
	KindOTP Kind = iota + 1
	KindBoardingPass
	KindNotification
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindOTP:
		return "otp"
	case KindBoardingPass:
		return "boarding-pass"
	case KindNotification:
		return "notification"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is one delivered SMS.
type Message struct {
	To      geo.MSISDN
	Country string // ISO code of the destination
	Kind    Kind
	SentAt  time.Time
	CostUSD float64
	Premium bool
	// Ref ties the message to its application object (record locator,
	// login name, ...).
	Ref string
	// ActorID is ground truth for evaluation; detectors never read it.
	ActorID string
}

// Gateway delivers messages and keeps the billing ledger.
type Gateway struct {
	clock    simclock.Clock
	registry *geo.Registry

	journal []Message
	// quota is the contracted message budget; 0 means uncapped.
	quota     int
	sent      int
	rejected  int
	totalCost float64
	// fraudRevenue accrues the revenue-share kickback on messages whose
	// destination has colluding terminating operators.
	fraudRevenue float64
}

// GatewayOption configures a Gateway.
type GatewayOption func(*Gateway)

// WithQuota caps total deliveries at n messages (the contracted volume).
func WithQuota(n int) GatewayOption {
	return func(g *Gateway) { g.quota = n }
}

// NewGateway returns a Gateway resolving destinations through registry.
func NewGateway(clock simclock.Clock, registry *geo.Registry, opts ...GatewayOption) *Gateway {
	g := &Gateway{clock: clock, registry: registry}
	for _, opt := range opts {
		opt(g)
	}
	return g
}

// Send delivers one message, billing the application owner. It returns the
// delivered message for inspection.
func (g *Gateway) Send(to geo.MSISDN, kind Kind, ref, actorID string) (Message, error) {
	country, ok := g.registry.CountryOf(to)
	if !ok {
		return Message{}, ErrUnknownDestination
	}
	if g.quota > 0 && g.sent >= g.quota {
		g.rejected++
		return Message{}, ErrQuotaExceeded
	}
	premium := geo.PlanFor(country).IsPremium(to)
	cost := country.TerminationUSD
	if premium {
		cost = country.PremiumUSD
	}
	m := Message{
		To:      to,
		Country: country.Code,
		Kind:    kind,
		SentAt:  g.clock.Now(),
		CostUSD: cost,
		Premium: premium,
		Ref:     ref,
		ActorID: actorID,
	}
	g.journal = append(g.journal, m)
	g.sent++
	g.totalCost += cost
	g.fraudRevenue += cost * country.RevenueShare
	return m, nil
}

// Sent returns the number of delivered messages.
func (g *Gateway) Sent() int { return g.sent }

// Rejected returns the number of quota-rejected sends.
func (g *Gateway) Rejected() int { return g.rejected }

// TotalCostUSD returns the application owner's cumulative SMS bill.
func (g *Gateway) TotalCostUSD() float64 { return g.totalCost }

// FraudRevenueUSD returns the cumulative revenue-share kickback accrued on
// all traffic. Per-actor revenue is computed from the journal.
func (g *Gateway) FraudRevenueUSD() float64 { return g.fraudRevenue }

// Journal returns a copy of the delivery journal.
func (g *Gateway) Journal() []Message {
	out := make([]Message, len(g.journal))
	copy(out, g.journal)
	return out
}

// JournalBetween returns messages with from <= SentAt < to.
func (g *Gateway) JournalBetween(from, to time.Time) []Message {
	var out []Message
	for _, m := range g.journal {
		if !m.SentAt.Before(from) && m.SentAt.Before(to) {
			out = append(out, m)
		}
	}
	return out
}

// CostFor sums the application's billed cost over messages sent by actorID.
func (g *Gateway) CostFor(actorID string) float64 {
	var total float64
	for _, m := range g.journal {
		if m.ActorID == actorID {
			total += m.CostUSD
		}
	}
	return total
}

// RevenueFor sums the revenue-share kickback over messages sent by actorID.
func (g *Gateway) RevenueFor(actorID string) float64 {
	var total float64
	for _, m := range g.journal {
		if m.ActorID != actorID {
			continue
		}
		c, ok := g.registry.Lookup(m.Country)
		if !ok {
			continue
		}
		total += m.CostUSD * c.RevenueShare
	}
	return total
}

// OTPService is the login one-time-password feature: anyone can trigger an
// SMS to an arbitrary number, which is what makes it the classic pumping
// target.
type OTPService struct {
	gateway *Gateway
	enabled bool
}

// NewOTPService returns an enabled OTP service on gateway.
func NewOTPService(gateway *Gateway) *OTPService {
	return &OTPService{gateway: gateway, enabled: true}
}

// SetEnabled toggles the feature (kill-switch mitigation).
func (s *OTPService) SetEnabled(v bool) { s.enabled = v }

// Request sends an OTP to the number for the given login.
func (s *OTPService) Request(to geo.MSISDN, login, actorID string) (Message, error) {
	if !s.enabled {
		return Message{}, ErrFeatureDisabled
	}
	return s.gateway.Send(to, KindOTP, login, actorID)
}

// TicketResolver resolves record locators to their validity; satisfied by
// *booking.System.
type TicketResolver interface {
	// TicketExists reports whether the record locator identifies a ticket.
	TicketExists(locator string) bool
}

// BoardingPassService is the post-payment feature abused in the Airline D
// case study: a valid record locator entitles the holder to receive the
// boarding pass via SMS — and, absent per-booking rate limits, to receive
// it an unbounded number of times to arbitrary numbers.
type BoardingPassService struct {
	gateway *Gateway
	tickets TicketResolver
	enabled bool
}

// NewBoardingPassService returns an enabled boarding-pass service.
func NewBoardingPassService(gateway *Gateway, tickets TicketResolver) *BoardingPassService {
	return &BoardingPassService{gateway: gateway, tickets: tickets, enabled: true}
}

// SetEnabled toggles the feature. The paper's incident ended when "the SMS
// option was then temporarily removed".
func (s *BoardingPassService) SetEnabled(v bool) { s.enabled = v }

// Enabled reports whether the feature is on.
func (s *BoardingPassService) Enabled() bool { return s.enabled }

// Send delivers the boarding pass for locator to the number.
func (s *BoardingPassService) Send(locator string, to geo.MSISDN, actorID string) (Message, error) {
	if !s.enabled {
		return Message{}, ErrFeatureDisabled
	}
	if !s.tickets.TicketExists(locator) {
		return Message{}, ErrUnknownLocator
	}
	return s.gateway.Send(to, KindBoardingPass, locator, actorID)
}
