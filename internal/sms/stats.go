package sms

import (
	"math"
	"sort"
)

// CountByCountry tallies messages per destination ISO code.
func CountByCountry(msgs []Message) map[string]int {
	out := make(map[string]int)
	for _, m := range msgs {
		out[m.Country]++
	}
	return out
}

// CountByKind tallies messages per application feature.
func CountByKind(msgs []Message) map[Kind]int {
	out := make(map[Kind]int)
	for _, m := range msgs {
		out[m.Kind]++
	}
	return out
}

// Surge is the per-country volume increase between a baseline window and an
// attack window — one row of the paper's Table I.
type Surge struct {
	Country string
	Before  int
	After   int
	// IncreasePct is the percentage increase, e.g. 160209 for +160,209%.
	// Countries absent from the baseline use a floor of one message so the
	// ratio stays finite, matching how such tables are computed in practice.
	IncreasePct float64
}

// SurgeByCountry compares message volumes between two journal slices and
// returns every country seen in either window, sorted by descending
// increase (ties by code).
func SurgeByCountry(before, after []Message) []Surge {
	b := CountByCountry(before)
	a := CountByCountry(after)
	seen := make(map[string]bool, len(a)+len(b))
	for c := range b {
		seen[c] = true
	}
	for c := range a {
		seen[c] = true
	}
	out := make([]Surge, 0, len(seen))
	for c := range seen {
		base := b[c]
		floor := base
		if floor == 0 {
			floor = 1
		}
		pct := (float64(a[c]) - float64(base)) / float64(floor) * 100
		out = append(out, Surge{Country: c, Before: base, After: a[c], IncreasePct: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IncreasePct != out[j].IncreasePct {
			return out[i].IncreasePct > out[j].IncreasePct
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// TopSurges returns the n largest surges.
func TopSurges(before, after []Message, n int) []Surge {
	all := SurgeByCountry(before, after)
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// GlobalIncreasePct returns the overall percentage volume increase between
// the two windows (the paper reports ~25% for boarding passes in case C).
func GlobalIncreasePct(before, after []Message) float64 {
	if len(before) == 0 {
		if len(after) == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (float64(len(after)) - float64(len(before))) / float64(len(before)) * 100
}

// DistinctCountries returns how many destination countries appear.
func DistinctCountries(msgs []Message) int {
	return len(CountByCountry(msgs))
}

// CostByCountry sums billed cost per destination.
func CostByCountry(msgs []Message) map[string]float64 {
	out := make(map[string]float64)
	for _, m := range msgs {
		out[m.Country] += m.CostUSD
	}
	return out
}
