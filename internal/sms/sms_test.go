package sms

import (
	"errors"
	"math"
	"testing"
	"time"

	"funabuse/internal/geo"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

var t0 = time.Date(2022, time.December, 1, 0, 0, 0, 0, time.UTC)

func newGateway(opts ...GatewayOption) (*Gateway, *simclock.Manual) {
	clock := simclock.NewManual(t0)
	return NewGateway(clock, geo.Default(), opts...), clock
}

func numberIn(code string, seed uint64) geo.MSISDN {
	return geo.PlanFor(geo.Default().MustLookup(code)).Random(simrand.New(seed))
}

func premiumIn(code string, seed uint64) geo.MSISDN {
	return geo.PlanFor(geo.Default().MustLookup(code)).RandomPremium(simrand.New(seed))
}

func TestSendBillsDestinationRate(t *testing.T) {
	g, _ := newGateway()
	m, err := g.Send(numberIn("UZ", 1), KindOTP, "login", "attacker")
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	uz := geo.Default().MustLookup("UZ")
	if m.CostUSD != uz.TerminationUSD {
		t.Fatalf("cost %v, want %v", m.CostUSD, uz.TerminationUSD)
	}
	if m.Country != "UZ" || m.Premium {
		t.Fatalf("message %+v", m)
	}
	if g.TotalCostUSD() != uz.TerminationUSD {
		t.Fatalf("total cost %v", g.TotalCostUSD())
	}
}

func TestSendPremiumRate(t *testing.T) {
	g, _ := newGateway()
	m, err := g.Send(premiumIn("UZ", 2), KindOTP, "login", "attacker")
	if err != nil {
		t.Fatal(err)
	}
	uz := geo.Default().MustLookup("UZ")
	if !m.Premium || m.CostUSD != uz.PremiumUSD {
		t.Fatalf("premium message %+v", m)
	}
}

func TestSendUnknownDestination(t *testing.T) {
	g, _ := newGateway()
	if _, err := g.Send("00000000000", KindOTP, "x", "a"); !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuotaLocksOutLaterSenders(t *testing.T) {
	g, _ := newGateway(WithQuota(3))
	for range 3 {
		if _, err := g.Send(numberIn("FR", 3), KindOTP, "x", "legit"); err != nil {
			t.Fatal(err)
		}
	}
	_, err := g.Send(numberIn("FR", 4), KindOTP, "x", "legit")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if g.Sent() != 3 || g.Rejected() != 1 {
		t.Fatalf("sent %d rejected %d", g.Sent(), g.Rejected())
	}
}

func TestFraudRevenueAccrues(t *testing.T) {
	g, _ := newGateway()
	uz := geo.Default().MustLookup("UZ")
	for range 10 {
		if _, err := g.Send(numberIn("UZ", 5), KindOTP, "x", "attacker"); err != nil {
			t.Fatal(err)
		}
	}
	want := 10 * uz.TerminationUSD * uz.RevenueShare
	if diff := math.Abs(g.FraudRevenueUSD() - want); diff > 1e-9 {
		t.Fatalf("fraud revenue %v, want %v", g.FraudRevenueUSD(), want)
	}
	if diff := math.Abs(g.RevenueFor("attacker") - want); diff > 1e-9 {
		t.Fatalf("RevenueFor = %v, want %v", g.RevenueFor("attacker"), want)
	}
	if g.RevenueFor("someone-else") != 0 {
		t.Fatal("revenue attributed to wrong actor")
	}
}

func TestJournalBetween(t *testing.T) {
	g, clock := newGateway()
	for range 3 {
		if _, err := g.Send(numberIn("GB", 6), KindNotification, "x", "a"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Hour)
	}
	got := g.JournalBetween(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if len(got) != 2 {
		t.Fatalf("JournalBetween returned %d", len(got))
	}
}

func TestOTPServiceKillSwitch(t *testing.T) {
	g, _ := newGateway()
	svc := NewOTPService(g)
	if _, err := svc.Request(numberIn("FR", 7), "user", "a"); err != nil {
		t.Fatal(err)
	}
	svc.SetEnabled(false)
	if _, err := svc.Request(numberIn("FR", 8), "user", "a"); !errors.Is(err, ErrFeatureDisabled) {
		t.Fatalf("err = %v", err)
	}
}

type fakeTickets map[string]bool

func (f fakeTickets) TicketExists(loc string) bool { return f[loc] }

func TestBoardingPassRequiresTicket(t *testing.T) {
	g, _ := newGateway()
	svc := NewBoardingPassService(g, fakeTickets{"ABC123": true})
	if _, err := svc.Send("ABC123", numberIn("UZ", 9), "attacker"); err != nil {
		t.Fatalf("valid locator rejected: %v", err)
	}
	if _, err := svc.Send("NOPE99", numberIn("UZ", 10), "attacker"); !errors.Is(err, ErrUnknownLocator) {
		t.Fatalf("err = %v", err)
	}
}

func TestBoardingPassKillSwitchStopsAttack(t *testing.T) {
	g, _ := newGateway()
	svc := NewBoardingPassService(g, fakeTickets{"ABC123": true})
	svc.SetEnabled(false)
	if svc.Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	if _, err := svc.Send("ABC123", numberIn("UZ", 11), "attacker"); !errors.Is(err, ErrFeatureDisabled) {
		t.Fatalf("err = %v", err)
	}
	if g.Sent() != 0 {
		t.Fatal("disabled service delivered a message")
	}
}

func TestUnboundedResendIsTheVulnerability(t *testing.T) {
	// The Airline D flaw: one locator, unlimited boarding-pass sends.
	g, _ := newGateway()
	svc := NewBoardingPassService(g, fakeTickets{"ABC123": true})
	for i := range 500 {
		if _, err := svc.Send("ABC123", numberIn("UZ", uint64(i)), "attacker"); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if g.Sent() != 500 {
		t.Fatalf("Sent() = %d", g.Sent())
	}
}

func TestCountByCountryAndKind(t *testing.T) {
	msgs := []Message{
		{Country: "UZ", Kind: KindOTP},
		{Country: "UZ", Kind: KindBoardingPass},
		{Country: "FR", Kind: KindOTP},
	}
	byCountry := CountByCountry(msgs)
	if byCountry["UZ"] != 2 || byCountry["FR"] != 1 {
		t.Fatalf("byCountry %v", byCountry)
	}
	byKind := CountByKind(msgs)
	if byKind[KindOTP] != 2 || byKind[KindBoardingPass] != 1 {
		t.Fatalf("byKind %v", byKind)
	}
}

func TestSurgeByCountry(t *testing.T) {
	before := []Message{
		{Country: "GB"}, {Country: "GB"}, {Country: "GB"}, {Country: "GB"},
		{Country: "UZ"},
	}
	after := []Message{
		{Country: "GB"}, {Country: "GB"}, {Country: "GB"}, {Country: "GB"}, {Country: "GB"}, {Country: "GB"},
		{Country: "UZ"}, {Country: "UZ"}, {Country: "UZ"}, {Country: "UZ"}, {Country: "UZ"},
		{Country: "KH"},
	}
	surges := SurgeByCountry(before, after)
	if surges[0].Country != "UZ" || surges[0].IncreasePct != 400 {
		t.Fatalf("top surge %+v", surges[0])
	}
	var gb, kh Surge
	for _, s := range surges {
		switch s.Country {
		case "GB":
			gb = s
		case "KH":
			kh = s
		}
	}
	if gb.IncreasePct != 50 {
		t.Fatalf("GB surge %+v", gb)
	}
	// KH absent from baseline: floor of 1 keeps the ratio finite, so one
	// new message reads as +100%.
	if kh.Before != 0 || kh.IncreasePct != 100 {
		t.Fatalf("KH surge %+v", kh)
	}
}

func TestSurgeOrderingDescending(t *testing.T) {
	before := []Message{{Country: "A"}, {Country: "B"}, {Country: "B"}}
	after := []Message{
		{Country: "A"}, {Country: "A"}, {Country: "A"},
		{Country: "B"}, {Country: "B"}, {Country: "B"},
	}
	surges := SurgeByCountry(before, after)
	for i := 1; i < len(surges); i++ {
		if surges[i-1].IncreasePct < surges[i].IncreasePct {
			t.Fatalf("surges not descending: %+v", surges)
		}
	}
}

func TestTopSurgesTruncates(t *testing.T) {
	before := []Message{{Country: "A"}, {Country: "B"}, {Country: "C"}}
	after := []Message{{Country: "A"}, {Country: "A"}, {Country: "B"}, {Country: "C"}}
	if got := len(TopSurges(before, after, 2)); got != 2 {
		t.Fatalf("TopSurges len %d", got)
	}
	if got := len(TopSurges(before, after, 99)); got != 3 {
		t.Fatalf("TopSurges overflow len %d", got)
	}
}

func TestGlobalIncreasePct(t *testing.T) {
	before := make([]Message, 100)
	after := make([]Message, 125)
	if got := GlobalIncreasePct(before, after); got != 25 {
		t.Fatalf("GlobalIncreasePct = %v", got)
	}
	if got := GlobalIncreasePct(nil, nil); got != 0 {
		t.Fatalf("empty GlobalIncreasePct = %v", got)
	}
	if got := GlobalIncreasePct(nil, after); !math.IsInf(got, 1) {
		t.Fatalf("zero-baseline GlobalIncreasePct = %v", got)
	}
}

func TestDistinctCountries(t *testing.T) {
	msgs := []Message{{Country: "A"}, {Country: "B"}, {Country: "A"}}
	if got := DistinctCountries(msgs); got != 2 {
		t.Fatalf("DistinctCountries = %d", got)
	}
}

func TestCostByCountry(t *testing.T) {
	msgs := []Message{
		{Country: "UZ", CostUSD: 0.28},
		{Country: "UZ", CostUSD: 0.28},
		{Country: "FR", CostUSD: 0.045},
	}
	costs := CostByCountry(msgs)
	if math.Abs(costs["UZ"]-0.56) > 1e-9 {
		t.Fatalf("UZ cost %v", costs["UZ"])
	}
}

func TestKindString(t *testing.T) {
	if KindOTP.String() != "otp" || KindBoardingPass.String() != "boarding-pass" ||
		KindNotification.String() != "notification" || Kind(9).String() != "Kind(9)" {
		t.Fatal("Kind.String wrong")
	}
}

func TestJournalIsCopy(t *testing.T) {
	g, _ := newGateway()
	if _, err := g.Send(numberIn("FR", 12), KindOTP, "x", "a"); err != nil {
		t.Fatal(err)
	}
	j := g.Journal()
	j[0].Country = "XX"
	if g.Journal()[0].Country == "XX" {
		t.Fatal("Journal exposed internal slice")
	}
}
