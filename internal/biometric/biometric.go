// Package biometric implements the behavioural-biometric detection the
// paper's Section V calls for as future work: modelling *how* a form is
// filled rather than how many requests a session makes. Low-volume
// functional abuse is invisible to volume features, but every reservation
// still requires entering passenger details — and the micro-dynamics of
// that interaction (inter-keystroke timing variance, corrections, pointer
// paths, field dwell) separate humans from automation even at one request
// per half hour.
//
// The package provides interaction traces, generators for the behaviour
// classes observed in the wild (human, programmatic fill, scripted delays,
// replayed human recordings), the feature extraction, and a threshold
// detector with interpretable verdicts.
package biometric

import (
	"math"

	"funabuse/internal/simrand"
)

// Trace is the client-side interaction record accompanying one form
// submission, as a behavioural collector script would report it.
type Trace struct {
	// KeyIntervalsMs are the delays between successive keystrokes.
	KeyIntervalsMs []float64
	// FieldDwellMs is the time spent focused on each form field.
	FieldDwellMs []float64
	// Backspaces counts correction keys pressed.
	Backspaces int
	// PointerPathRatio is travelled pointer distance divided by the
	// straight-line distance between interaction points; humans curve
	// (ratio > 1), programmatic pointers teleport or move straight
	// (ratio ~ 0 or exactly 1).
	PointerPathRatio float64
	// FillTimeMs is the total time from first focus to submit.
	FillTimeMs float64
}

// Features is the numeric summary the detector scores.
type Features struct {
	MeanKeyIntervalMs float64
	// KeyIntervalCV is the coefficient of variation of inter-key delays —
	// the single strongest human/bot separator: human typing is noisy,
	// scripted delays are uniform, programmatic fills have no keystrokes
	// at all.
	KeyIntervalCV   float64
	BackspaceRate   float64
	DwellVarianceMs float64
	PointerCurve    float64
	FillTimeMs      float64
	Keystrokes      int
}

// Extract summarises a trace.
func Extract(tr Trace) Features {
	var f Features
	f.Keystrokes = len(tr.KeyIntervalsMs) + 1
	f.FillTimeMs = tr.FillTimeMs
	f.PointerCurve = tr.PointerPathRatio
	if n := len(tr.KeyIntervalsMs); n > 0 {
		var sum float64
		for _, v := range tr.KeyIntervalsMs {
			sum += v
		}
		mean := sum / float64(n)
		var sq float64
		for _, v := range tr.KeyIntervalsMs {
			d := v - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(n))
		f.MeanKeyIntervalMs = mean
		if mean > 0 {
			f.KeyIntervalCV = std / mean
		}
		f.BackspaceRate = float64(tr.Backspaces) / float64(n+1)
	}
	if n := len(tr.FieldDwellMs); n > 1 {
		var sum float64
		for _, v := range tr.FieldDwellMs {
			sum += v
		}
		mean := sum / float64(n)
		var sq float64
		for _, v := range tr.FieldDwellMs {
			d := v - mean
			sq += d * d
		}
		f.DwellVarianceMs = sq / float64(n)
	}
	return f
}

// Vector flattens features for the numeric classifiers.
func (f Features) Vector() []float64 {
	return []float64{
		f.MeanKeyIntervalMs, f.KeyIntervalCV, f.BackspaceRate,
		f.DwellVarianceMs, f.PointerCurve, f.FillTimeMs, float64(f.Keystrokes),
	}
}

// Verdict is the detector's decision with the triggering signal.
type Verdict struct {
	Flagged bool
	Reason  string
}

// Detector applies interpretable thresholds to trace features.
type Detector struct {
	// MinFillTimeMs flags forms completed faster than any human.
	MinFillTimeMs float64
	// MinKeyIntervalCV flags robotically uniform keystroke timing.
	MinKeyIntervalCV float64
	// MinKeystrokes flags programmatic fills that bypass key events.
	MinKeystrokes int
	// MaxPointerStraightness flags pointer paths that are perfectly
	// straight or teleporting (curve ratio at or below 1).
	MaxPointerStraightness float64
}

// NewDetector returns thresholds calibrated to the generators in this
// package (and roughly to the human-typing literature: inter-key CV well
// above 0.3, fill times in the tens of seconds for multi-field forms).
func NewDetector() *Detector {
	return &Detector{
		MinFillTimeMs:          4000,
		MinKeyIntervalCV:       0.25,
		MinKeystrokes:          8,
		MaxPointerStraightness: 1.02,
	}
}

// Judge scores one trace.
func (d *Detector) Judge(tr Trace) Verdict {
	f := Extract(tr)
	switch {
	case f.Keystrokes < d.MinKeystrokes:
		return Verdict{Flagged: true, Reason: "no-keystrokes"}
	case f.FillTimeMs < d.MinFillTimeMs:
		return Verdict{Flagged: true, Reason: "superhuman-fill-time"}
	case f.KeyIntervalCV < d.MinKeyIntervalCV:
		return Verdict{Flagged: true, Reason: "uniform-typing"}
	case f.PointerCurve <= d.MaxPointerStraightness:
		return Verdict{Flagged: true, Reason: "straight-pointer"}
	default:
		return Verdict{}
	}
}

// Class labels the behaviour generators.
type Class int

// Behaviour classes.
const (
	// ClassHuman is genuine interactive form filling.
	ClassHuman Class = iota + 1
	// ClassProgrammatic sets field values via script: no key events, no
	// pointer travel, instant submission.
	ClassProgrammatic
	// ClassScripted types with fixed delays between synthetic key events —
	// the "humanised" automation of commodity bots.
	ClassScripted
	// ClassReplay replays a recorded human trace with light noise — the
	// expensive evasion tier.
	ClassReplay
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassHuman:
		return "human"
	case ClassProgrammatic:
		return "programmatic"
	case ClassScripted:
		return "scripted"
	case ClassReplay:
		return "replay"
	default:
		return "unknown"
	}
}

// Generator produces traces per behaviour class.
type Generator struct {
	rng *simrand.RNG
	// recorded is the human trace pool Replay draws from.
	recorded []Trace
}

// NewGenerator returns a Generator drawing from r.
func NewGenerator(r *simrand.RNG) *Generator {
	return &Generator{rng: r}
}

// Generate returns a trace of the given class for a form with fields
// fields and roughly chars typed characters.
func (g *Generator) Generate(class Class, fields, chars int) Trace {
	if fields < 1 {
		fields = 3
	}
	if chars < 2 {
		chars = 20
	}
	switch class {
	case ClassProgrammatic:
		return g.programmatic(fields)
	case ClassScripted:
		return g.scripted(fields, chars)
	case ClassReplay:
		return g.replay(fields, chars)
	default:
		return g.human(fields, chars)
	}
}

// human: lognormal inter-key intervals (median ~160 ms, heavy tail),
// occasional corrections and thinking pauses, curved pointer travel.
func (g *Generator) human(fields, chars int) Trace {
	tr := Trace{
		KeyIntervalsMs: make([]float64, 0, chars-1),
		FieldDwellMs:   make([]float64, 0, fields),
	}
	var total float64
	for i := 0; i < chars-1; i++ {
		iv := g.rng.LogNormal(math.Log(160), 0.45)
		if g.rng.Bool(0.06) { // thinking pause
			iv += g.rng.Exp(900)
		}
		tr.KeyIntervalsMs = append(tr.KeyIntervalsMs, iv)
		total += iv
	}
	for range fields {
		d := g.rng.LogNormal(math.Log(2600), 0.5)
		tr.FieldDwellMs = append(tr.FieldDwellMs, d)
		total += 350 + g.rng.Float64()*500 // focus transitions
	}
	if g.rng.Bool(0.7) {
		tr.Backspaces = 1 + g.rng.Intn(4)
	}
	tr.PointerPathRatio = 1.15 + g.rng.Float64()*0.5
	tr.FillTimeMs = total
	return tr
}

// programmatic: values injected, instant submit.
func (g *Generator) programmatic(fields int) Trace {
	return Trace{
		FieldDwellMs:     make([]float64, fields), // zero dwell
		PointerPathRatio: 0,
		FillTimeMs:       30 + g.rng.Float64()*60,
	}
}

// scripted: synthetic key events with a fixed delay plus tiny jitter, the
// classic "humanisation" shortcut.
func (g *Generator) scripted(fields, chars int) Trace {
	tr := Trace{
		KeyIntervalsMs: make([]float64, 0, chars-1),
		FieldDwellMs:   make([]float64, 0, fields),
	}
	base := 80 + g.rng.Float64()*60
	var total float64
	for i := 0; i < chars-1; i++ {
		iv := base + g.rng.Float64()*6 // ±3 ms jitter: CV ~ 0.02
		tr.KeyIntervalsMs = append(tr.KeyIntervalsMs, iv)
		total += iv
	}
	dwell := total / float64(fields)
	for range fields {
		tr.FieldDwellMs = append(tr.FieldDwellMs, dwell)
	}
	tr.PointerPathRatio = 1.0 // element.click(): straight to target
	tr.FillTimeMs = total
	return tr
}

// replay: a recorded human trace, re-emitted with light multiplicative
// noise. Builds its recording pool lazily from the human generator.
func (g *Generator) replay(fields, chars int) Trace {
	if len(g.recorded) < 5 {
		g.recorded = append(g.recorded, g.human(fields, chars))
	}
	src := g.recorded[g.rng.Intn(len(g.recorded))]
	tr := Trace{
		KeyIntervalsMs: make([]float64, len(src.KeyIntervalsMs)),
		FieldDwellMs:   make([]float64, len(src.FieldDwellMs)),
		Backspaces:     src.Backspaces,
	}
	var total float64
	for i, v := range src.KeyIntervalsMs {
		tr.KeyIntervalsMs[i] = v * (0.97 + g.rng.Float64()*0.06)
		total += tr.KeyIntervalsMs[i]
	}
	for i, v := range src.FieldDwellMs {
		tr.FieldDwellMs[i] = v * (0.97 + g.rng.Float64()*0.06)
	}
	tr.PointerPathRatio = src.PointerPathRatio * (0.98 + g.rng.Float64()*0.04)
	tr.FillTimeMs = total + 1200
	return tr
}

// ReplayDetector catches replay attacks by correlating traces across
// submissions: two recordings of genuinely independent human sessions are
// never near-identical, so a high similarity between a new trace and any
// previously seen one indicates replay. It keeps a bounded window of
// recent traces per scope (e.g. per flight or per endpoint).
type ReplayDetector struct {
	window int
	seen   []Trace
	// MaxSimilarity is the correlation above which a trace is flagged.
	MaxSimilarity float64
}

// NewReplayDetector returns a detector remembering the last window traces.
func NewReplayDetector(window int) *ReplayDetector {
	if window < 1 {
		window = 256
	}
	return &ReplayDetector{window: window, MaxSimilarity: 0.985}
}

// Observe scores a trace against the recent window, then records it. It
// returns true when the trace is a near-duplicate of an earlier one.
func (d *ReplayDetector) Observe(tr Trace) bool {
	replay := false
	for _, prev := range d.seen {
		if similarity(prev.KeyIntervalsMs, tr.KeyIntervalsMs) > d.MaxSimilarity {
			replay = true
			break
		}
	}
	d.seen = append(d.seen, tr)
	if len(d.seen) > d.window {
		d.seen = d.seen[len(d.seen)-d.window:]
	}
	return replay
}

// similarity is the Pearson correlation of two interval sequences,
// compared over their common prefix; sequences of very different lengths
// score zero.
func similarity(a, b []float64) float64 {
	n := min(len(a), len(b))
	if n < 8 {
		return 0
	}
	if max(len(a), len(b)) > n+2 {
		return 0
	}
	var sumA, sumB float64
	for i := range n {
		sumA += a[i]
		sumB += b[i]
	}
	meanA, meanB := sumA/float64(n), sumB/float64(n)
	var cov, varA, varB float64
	for i := range n {
		da, db := a[i]-meanA, b[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}
