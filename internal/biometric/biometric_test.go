package biometric

import (
	"testing"
	"testing/quick"

	"funabuse/internal/simrand"
)

func TestHumanTracesPass(t *testing.T) {
	g := NewGenerator(simrand.New(1))
	d := NewDetector()
	flagged := 0
	n := 500
	for range n {
		tr := g.Generate(ClassHuman, 4, 30)
		if v := d.Judge(tr); v.Flagged {
			flagged++
		}
	}
	// Humans should rarely trip the thresholds.
	if rate := float64(flagged) / float64(n); rate > 0.03 {
		t.Fatalf("human false-positive rate %v", rate)
	}
}

func TestProgrammaticFillCaught(t *testing.T) {
	g := NewGenerator(simrand.New(2))
	d := NewDetector()
	for range 200 {
		v := d.Judge(g.Generate(ClassProgrammatic, 4, 30))
		if !v.Flagged {
			t.Fatal("programmatic fill passed")
		}
		if v.Reason != "no-keystrokes" {
			t.Fatalf("reason %q", v.Reason)
		}
	}
}

func TestScriptedTypingCaught(t *testing.T) {
	g := NewGenerator(simrand.New(3))
	d := NewDetector()
	reasons := map[string]int{}
	for range 200 {
		v := d.Judge(g.Generate(ClassScripted, 4, 30))
		if !v.Flagged {
			t.Fatal("scripted typing passed")
		}
		reasons[v.Reason]++
	}
	if reasons["uniform-typing"]+reasons["superhuman-fill-time"]+reasons["straight-pointer"] != 200 {
		t.Fatalf("unexpected reasons %v", reasons)
	}
}

func TestReplayEvadesThresholdsButNotCorrelation(t *testing.T) {
	g := NewGenerator(simrand.New(4))
	d := NewDetector()
	rd := NewReplayDetector(512)

	thresholdFlags, replayFlags := 0, 0
	n := 300
	for range n {
		tr := g.Generate(ClassReplay, 4, 30)
		if d.Judge(tr).Flagged {
			thresholdFlags++
		}
		if rd.Observe(tr) {
			replayFlags++
		}
	}
	// Replayed human traces look human to the static thresholds...
	if rate := float64(thresholdFlags) / float64(n); rate > 0.1 {
		t.Fatalf("thresholds flagged %v of replays; replay should evade them", rate)
	}
	// ...but the correlation detector catches the reuse once the pool of
	// distinct recordings (5) is exhausted.
	if rate := float64(replayFlags) / float64(n); rate < 0.7 {
		t.Fatalf("replay detector caught only %v", rate)
	}
}

func TestReplayDetectorIgnoresIndependentHumans(t *testing.T) {
	g := NewGenerator(simrand.New(5))
	rd := NewReplayDetector(512)
	flagged := 0
	n := 300
	for range n {
		if rd.Observe(g.Generate(ClassHuman, 4, 30)) {
			flagged++
		}
	}
	if flagged > n/50 {
		t.Fatalf("replay detector flagged %d/%d independent humans", flagged, n)
	}
}

func TestExtractFeatures(t *testing.T) {
	tr := Trace{
		KeyIntervalsMs:   []float64{100, 200, 100, 200},
		FieldDwellMs:     []float64{1000, 3000},
		Backspaces:       1,
		PointerPathRatio: 1.3,
		FillTimeMs:       5000,
	}
	f := Extract(tr)
	if f.Keystrokes != 5 {
		t.Fatalf("Keystrokes = %d", f.Keystrokes)
	}
	if f.MeanKeyIntervalMs != 150 {
		t.Fatalf("MeanKeyIntervalMs = %v", f.MeanKeyIntervalMs)
	}
	if f.KeyIntervalCV <= 0.3 || f.KeyIntervalCV >= 0.4 {
		t.Fatalf("KeyIntervalCV = %v, want 50/150", f.KeyIntervalCV)
	}
	if f.BackspaceRate != 0.2 {
		t.Fatalf("BackspaceRate = %v", f.BackspaceRate)
	}
	if f.DwellVarianceMs != 1000*1000 {
		t.Fatalf("DwellVarianceMs = %v", f.DwellVarianceMs)
	}
	if len(f.Vector()) != 7 {
		t.Fatalf("vector length %d", len(f.Vector()))
	}
}

func TestExtractEmptyTrace(t *testing.T) {
	f := Extract(Trace{})
	if f.Keystrokes != 1 || f.KeyIntervalCV != 0 || f.MeanKeyIntervalMs != 0 {
		t.Fatalf("empty trace features %+v", f)
	}
}

func TestSimilarityProperties(t *testing.T) {
	selfSimilar := func(seed uint64) bool {
		r := simrand.New(seed)
		a := make([]float64, 20)
		for i := range a {
			a[i] = 50 + r.Float64()*300
		}
		return similarity(a, a) > 0.999
	}
	if err := quick.Check(selfSimilar, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Short or mismatched-length sequences score zero.
	if similarity([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Fatal("short sequences scored")
	}
	long := make([]float64, 30)
	short := make([]float64, 10)
	for i := range long {
		long[i] = float64(i)
	}
	for i := range short {
		short[i] = float64(i)
	}
	if similarity(long, short) != 0 {
		t.Fatal("mismatched lengths scored")
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassHuman:        "human",
		ClassProgrammatic: "programmatic",
		ClassScripted:     "scripted",
		ClassReplay:       "replay",
		Class(9):          "unknown",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q", int(c), c.String())
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(simrand.New(7)).Generate(ClassHuman, 4, 30)
	b := NewGenerator(simrand.New(7)).Generate(ClassHuman, 4, 30)
	if len(a.KeyIntervalsMs) != len(b.KeyIntervalsMs) || a.FillTimeMs != b.FillTimeMs {
		t.Fatal("generator not deterministic")
	}
}

func TestGenerateDefaults(t *testing.T) {
	g := NewGenerator(simrand.New(8))
	tr := g.Generate(ClassHuman, 0, 0)
	if len(tr.FieldDwellMs) != 3 {
		t.Fatalf("default fields %d", len(tr.FieldDwellMs))
	}
	if len(tr.KeyIntervalsMs) != 19 {
		t.Fatalf("default chars produced %d intervals", len(tr.KeyIntervalsMs))
	}
}
