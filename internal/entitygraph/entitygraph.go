// Package entitygraph maintains an incremental entity-linkage graph: the
// structural-risk-amplification defence of the Grab "Combating Organized
// Platform Abuse" line of work, applied to the paper's functional-abuse
// setting. Nodes are typed entity keys — fingerprint hashes, source IPs,
// normalized passenger-name tokens, booking references, phone prefixes —
// and an edge records that two entities co-occurred within one session or
// booking. Connected components are tracked online with a union-find
// (path compression on the write path, union by size), and each
// component carries a summary: size, the set of distinct entity types it
// spans, and a weak-signal score accumulated from low-confidence
// detector verdicts.
//
// The point is amplification. A low-and-slow syndicate keeps every
// individual session under every volume threshold, so each session
// contributes only a weak signal — but the sessions share rotating
// subsets of infrastructure, so their entities collapse into one
// component whose accumulated score is flagrant. A component is flagged
// once it is big enough (MinSize), structurally diverse enough
// (MinTypes), and has accumulated enough weak evidence (FlagScore);
// flags are sticky. Honest clients keep private infrastructure, so their
// components stay small and below every gate.
//
// Memory is bounded: the graph holds at most MaxNodes nodes and MaxEdges
// co-occurrence edges. When a budget is exceeded the graph decays
// deterministically — the nodes least recently observed (ties broken by
// key) are evicted down to 3/4 of the budget and the union-find is
// rebuilt from the surviving edges, preserving per-node accrued score
// and sticky flags. Two graphs fed the same observation sequence evict
// identically, which is what the loadgen determinism goldens rely on.
//
// The graph is safe for concurrent use: observations take the write
// lock; lookups — including the gate hot path's FlaggedBytes — take the
// read lock and never mutate (the read path walks parent pointers
// without compressing).
package entitygraph

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type classifies an entity key.
type Type uint8

// Entity types, one per key prefix.
const (
	TypeFingerprint Type = iota
	TypeIP
	TypeName
	TypeBooking
	TypePhone
	TypeOther
	numTypes
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeFingerprint:
		return "fingerprint"
	case TypeIP:
		return "ip"
	case TypeName:
		return "name"
	case TypeBooking:
		return "booking"
	case TypePhone:
		return "phone"
	default:
		return "other"
	}
}

// Key constructors. Prefixes match the byte keys httpgate assembles on
// the hot path ("fp:", "ip:"), so a gate probe and a detector
// observation of the same entity land on the same node.

// FingerprintKey returns the node key for a fingerprint hash.
func FingerprintKey(hash uint64) string { return "fp:" + strconv.FormatUint(hash, 16) }

// IPKey returns the node key for a source address.
func IPKey(ip string) string { return "ip:" + ip }

// NameKey returns the node key for a normalized passenger-name token.
func NameKey(token string) string { return "nm:" + strings.ToLower(token) }

// BookingKey returns the node key for a booking reference.
func BookingKey(ref string) string { return "bk:" + ref }

// PhonePrefixLen is how many leading digits of a destination number form
// its prefix node — enough to identify a premium-rate block without
// storing full numbers.
const PhonePrefixLen = 6

// PhoneKey returns the node key for a phone number's prefix.
func PhoneKey(number string) string {
	trimmed := strings.TrimPrefix(number, "+")
	if len(trimmed) > PhonePrefixLen {
		trimmed = trimmed[:PhonePrefixLen]
	}
	return "ph:" + trimmed
}

// KeyType classifies a node key by its prefix.
func KeyType(key string) Type {
	if len(key) < 3 || key[2] != ':' {
		return TypeOther
	}
	switch key[:2] {
	case "fp":
		return TypeFingerprint
	case "ip":
		return TypeIP
	case "nm":
		return TypeName
	case "bk":
		return TypeBooking
	case "ph":
		return TypePhone
	default:
		return TypeOther
	}
}

// Config tunes a Graph. Zero fields select defaults.
type Config struct {
	// MaxNodes and MaxEdges are the hard memory budgets; exceeding either
	// triggers a deterministic decay eviction down to 3/4 of the budget.
	// Defaults: 65536 nodes, 4x that many edges.
	MaxNodes int
	MaxEdges int
	// MinSize is the smallest component (node count) that can be flagged.
	// Default 3: a lone fingerprint+IP pair — every honest client — can
	// never be flagged on score alone.
	MinSize int
	// MinTypes is the minimum number of distinct entity types a flaggable
	// component must span. Default 2.
	MinTypes int
	// FlagScore is the accumulated weak-signal score at which a component
	// that meets the structural gates is flagged. Default 3.
	FlagScore float64
}

func (c Config) withDefaults() Config {
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 16
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 4 * c.MaxNodes
	}
	if c.MinSize <= 0 {
		c.MinSize = 3
	}
	if c.MinTypes <= 0 {
		c.MinTypes = 2
	}
	if c.FlagScore <= 0 {
		c.FlagScore = 3
	}
	return c
}

// node is one entity. parent/size implement the union-find; size,
// typeMask, score and flagged are authoritative only at a root (except
// during eviction, when flags are propagated to members so they survive
// the rebuild). own is the node's personally accrued weak score — the
// quantity that survives eviction and from which root scores are rebuilt.
type node struct {
	key    string
	typ    Type
	parent int32
	tick   uint64

	size     int32
	typeMask uint16
	score    float64
	own      float64
	flagged  bool
}

// edgeKey identifies a co-occurrence edge by its endpoint keys, ordered
// so (a,b) and (b,a) are one edge. Keys, not node indices: indices are
// compacted on eviction, keys are stable.
type edgeKey struct{ a, b string }

// Graph is the incremental entity-linkage graph.
type Graph struct {
	cfg Config

	mu    sync.RWMutex
	idx   map[string]int32
	nodes []node
	edges map[edgeKey]uint64 // last tick the co-occurrence was observed

	tick       uint64
	components int
	flagRoots  int
	evicted    uint64

	scratch []int32
}

// New returns an empty graph under cfg's budgets.
func New(cfg Config) *Graph {
	cfg = cfg.withDefaults()
	return &Graph{
		cfg:   cfg,
		idx:   make(map[string]int32),
		edges: make(map[edgeKey]uint64),
	}
}

// Config returns the graph's resolved configuration.
func (g *Graph) Config() Config { return g.cfg }

// Observe records one co-occurrence: every key becomes (or refreshes) a
// node, all keys are linked into one component, and weak — a
// low-confidence risk score in [0,1] from whatever detector produced
// this observation — is accrued onto the component. Empty keys are
// ignored. Observations are the graph's logical clock: eviction order is
// least-recently-observed first.
func (g *Graph) Observe(keys []string, weak float64) {
	g.mu.Lock()
	defer g.mu.Unlock()

	ids := g.scratch[:0]
	for _, k := range keys {
		if k == "" {
			continue
		}
		ids = append(ids, g.getOrAdd(k))
	}
	g.scratch = ids
	if len(ids) == 0 {
		return
	}
	g.tick++
	for _, id := range ids {
		g.nodes[id].tick = g.tick
	}
	anchor := ids[0]
	for _, id := range ids[1:] {
		g.link(anchor, id)
	}
	root := g.find(anchor)
	if weak > 0 {
		g.nodes[anchor].own += weak
		g.nodes[root].score += weak
	}
	g.refreshFlag(root)

	if len(g.nodes) > g.cfg.MaxNodes || len(g.edges) > g.cfg.MaxEdges {
		g.evict()
	}
}

// getOrAdd resolves key to its node index, inserting a fresh singleton
// component if unseen. Callers hold the write lock.
func (g *Graph) getOrAdd(key string) int32 {
	if i, ok := g.idx[key]; ok {
		return i
	}
	i := int32(len(g.nodes))
	typ := KeyType(key)
	g.nodes = append(g.nodes, node{
		key: key, typ: typ, parent: i,
		size: 1, typeMask: 1 << typ,
	})
	g.idx[key] = i
	g.components++
	return i
}

// link records the co-occurrence edge between two nodes and unions their
// components. Callers hold the write lock.
func (g *Graph) link(a, b int32) {
	if a == b {
		return
	}
	ka, kb := g.nodes[a].key, g.nodes[b].key
	if kb < ka {
		ka, kb = kb, ka
	}
	g.edges[edgeKey{ka, kb}] = g.tick
	g.union(a, b)
}

// find resolves i's root with path compression. Write path only.
func (g *Graph) find(i int32) int32 {
	root := i
	for g.nodes[root].parent != root {
		root = g.nodes[root].parent
	}
	for g.nodes[i].parent != root {
		g.nodes[i].parent, i = root, g.nodes[i].parent
	}
	return root
}

// findRead resolves i's root without mutating, for lock-shared readers.
func (g *Graph) findRead(i int32) int32 {
	for g.nodes[i].parent != i {
		i = g.nodes[i].parent
	}
	return i
}

// union merges the components of a and b by size, folding the smaller
// root's aggregates into the larger. Callers hold the write lock.
func (g *Graph) union(a, b int32) {
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		return
	}
	if g.nodes[ra].size < g.nodes[rb].size {
		ra, rb = rb, ra
	}
	na, nb := &g.nodes[ra], &g.nodes[rb]
	nb.parent = ra
	na.size += nb.size
	na.typeMask |= nb.typeMask
	na.score += nb.score
	if na.flagged && nb.flagged {
		g.flagRoots--
	}
	na.flagged = na.flagged || nb.flagged
	g.components--
}

// refreshFlag flags root's component once it crosses every gate; flags
// are sticky. Callers hold the write lock.
func (g *Graph) refreshFlag(root int32) {
	n := &g.nodes[root]
	if n.flagged {
		return
	}
	if int(n.size) >= g.cfg.MinSize &&
		bits.OnesCount16(n.typeMask) >= g.cfg.MinTypes &&
		n.score >= g.cfg.FlagScore {
		n.flagged = true
		g.flagRoots++
	}
}

// evict is the deterministic decay step: drop the least recently
// observed nodes (ties by key) down to 3/4 of the node budget, drop
// edges that lost an endpoint (then the oldest edges if still over
// budget), and rebuild the union-find from the survivors. Per-node
// accrued score and sticky flags survive; a flagged component that the
// eviction splits leaves every surviving fragment flagged.
func (g *Graph) evict() {
	// Sticky flags must survive the rebuild at node granularity.
	for i := range g.nodes {
		if g.nodes[g.findRead(int32(i))].flagged {
			g.nodes[i].flagged = true
		}
	}

	keep := g.nodes
	if target := g.cfg.MaxNodes * 3 / 4; len(g.nodes) > target {
		order := make([]int32, len(g.nodes))
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			na, nb := &g.nodes[order[a]], &g.nodes[order[b]]
			if na.tick != nb.tick {
				return na.tick < nb.tick
			}
			return na.key < nb.key
		})
		keep = make([]node, 0, target)
		for _, i := range order[len(order)-target:] {
			keep = append(keep, g.nodes[i])
		}
		g.evicted += uint64(len(g.nodes) - target)
	}

	idx := make(map[string]int32, len(keep))
	for i := range keep {
		n := &keep[i]
		n.parent = int32(i)
		n.size = 1
		n.typeMask = 1 << n.typ
		n.score = n.own
		idx[n.key] = int32(i)
	}
	g.nodes, g.idx = keep, idx
	g.components = len(keep)

	// Surviving edges: both endpoints kept. Determinism note: map
	// iteration order is random, but edge filtering is order-independent
	// and the rebuild unions below are commutative in their aggregates,
	// so the resulting components, scores and flags are identical across
	// runs; only when the edge budget itself overflows is an explicit
	// sort imposed.
	for ek := range g.edges {
		if _, oka := idx[ek.a]; !oka {
			delete(g.edges, ek)
			continue
		}
		if _, okb := idx[ek.b]; !okb {
			delete(g.edges, ek)
		}
	}
	if target := g.cfg.MaxEdges * 3 / 4; len(g.edges) > target {
		type aged struct {
			ek   edgeKey
			tick uint64
		}
		all := make([]aged, 0, len(g.edges))
		for ek, t := range g.edges {
			all = append(all, aged{ek, t})
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].tick != all[b].tick {
				return all[a].tick < all[b].tick
			}
			if all[a].ek.a != all[b].ek.a {
				return all[a].ek.a < all[b].ek.a
			}
			return all[a].ek.b < all[b].ek.b
		})
		for _, e := range all[:len(all)-target] {
			delete(g.edges, e.ek)
		}
	}

	g.flagRoots = 0
	for ek := range g.edges {
		g.union(idx[ek.a], idx[ek.b])
	}
	// union counts a flagged-flagged merge as losing one flagged root
	// starting from flagRoots = 0, so recount from the rebuilt forest.
	g.flagRoots = 0
	for i := range g.nodes {
		if g.nodes[i].parent == int32(i) && g.nodes[i].flagged {
			g.flagRoots++
		}
	}
	for i := range g.nodes {
		if g.nodes[i].parent == int32(i) {
			g.refreshFlag(int32(i))
		}
	}
}

// FlaggedBytes reports whether key belongs to a flagged component. It is
// the gate hot path: the byte key is looked up without materialising a
// string, the root walk does not mutate, and no allocation occurs.
func (g *Graph) FlaggedBytes(key []byte) bool {
	g.mu.RLock()
	i, ok := g.idx[string(key)]
	if !ok {
		g.mu.RUnlock()
		return false
	}
	f := g.nodes[g.findRead(i)].flagged
	g.mu.RUnlock()
	return f
}

// Flagged reports whether key belongs to a flagged component.
func (g *Graph) Flagged(key string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.idx[key]
	if !ok {
		return false
	}
	return g.nodes[g.findRead(i)].flagged
}

// Component summarises the component a key belongs to.
type Component struct {
	// Size is the node count; Types the distinct entity-type count.
	Size  int
	Types int
	// Score is the accumulated weak-signal score.
	Score   float64
	Flagged bool
}

// Lookup returns the component summary for key; ok is false for an
// unknown entity.
func (g *Graph) Lookup(key string) (Component, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.idx[key]
	if !ok {
		return Component{}, false
	}
	n := &g.nodes[g.findRead(i)]
	return Component{
		Size:    int(n.size),
		Types:   bits.OnesCount16(n.typeMask),
		Score:   n.score,
		Flagged: n.flagged,
	}, true
}

// Stats is the graph's observability snapshot.
type Stats struct {
	Nodes, Edges int
	// Components is the current connected-component count;
	// FlaggedComponents how many of them are flagged.
	Components        int
	FlaggedComponents int
	// Observations counts Observe calls that recorded at least one key;
	// Evicted counts nodes dropped by decay evictions.
	Observations uint64
	Evicted      uint64
}

// Stats snapshots the graph.
func (g *Graph) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return Stats{
		Nodes:             len(g.nodes),
		Edges:             len(g.edges),
		Components:        g.components,
		FlaggedComponents: g.flagRoots,
		Observations:      g.tick,
		Evicted:           g.evicted,
	}
}
