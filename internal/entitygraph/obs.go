package entitygraph

import "funabuse/internal/obs"

// Metric names exposed by the graph's collector.
const (
	MetricNodes        = "entitygraph_nodes"
	MetricEdges        = "entitygraph_edges"
	MetricComponents   = "entitygraph_components"
	MetricFlagged      = "entitygraph_flagged_components"
	MetricObservations = "entitygraph_observations_total"
	MetricEvicted      = "entitygraph_evicted_nodes_total"
)

// Collector exposes the graph on the obs snapshot contract, so a gate
// deployment scrapes linkage-graph pressure (node/edge occupancy,
// eviction churn) and detections (flagged components) alongside the
// gate's own families.
func (g *Graph) Collector() obs.Collector {
	return obs.CollectorFunc(func(dst []obs.Sample) []obs.Sample {
		st := g.Stats()
		return append(dst,
			obs.Sample{Name: MetricNodes, Value: float64(st.Nodes)},
			obs.Sample{Name: MetricEdges, Value: float64(st.Edges)},
			obs.Sample{Name: MetricComponents, Value: float64(st.Components)},
			obs.Sample{Name: MetricFlagged, Value: float64(st.FlaggedComponents)},
			obs.Sample{Name: MetricObservations, Value: float64(st.Observations)},
			obs.Sample{Name: MetricEvicted, Value: float64(st.Evicted)},
		)
	})
}
