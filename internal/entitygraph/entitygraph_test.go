package entitygraph

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyHelpers(t *testing.T) {
	cases := []struct {
		key  string
		want Type
	}{
		{FingerprintKey(0xdeadbeef), TypeFingerprint},
		{IPKey("203.0.113.9"), TypeIP},
		{NameKey("GARCIA"), TypeName},
		{BookingKey("PNR00042"), TypeBooking},
		{PhoneKey("+8821612345678"), TypePhone},
		{"weird", TypeOther},
		{"", TypeOther},
	}
	for _, c := range cases {
		if got := KeyType(c.key); got != c.want {
			t.Errorf("KeyType(%q) = %v, want %v", c.key, got, c.want)
		}
	}
	if k := NameKey("GARCIA"); k != "nm:garcia" {
		t.Errorf("NameKey not normalized: %q", k)
	}
	if k := PhoneKey("+8821612345678"); k != "ph:882161" {
		t.Errorf("PhoneKey = %q, want prefix-truncated", k)
	}
}

func TestObserveBuildsComponents(t *testing.T) {
	g := New(Config{})
	g.Observe([]string{"fp:a", "ip:1"}, 0)
	g.Observe([]string{"fp:b", "ip:2"}, 0)
	st := g.Stats()
	if st.Nodes != 4 || st.Components != 2 {
		t.Fatalf("want 4 nodes in 2 components, got %+v", st)
	}
	// Shared IP collapses the two components.
	g.Observe([]string{"fp:a", "ip:2"}, 0)
	if st = g.Stats(); st.Components != 1 {
		t.Fatalf("shared entity should merge components, got %+v", st)
	}
	c, ok := g.Lookup("fp:b")
	if !ok || c.Size != 4 || c.Types != 2 {
		t.Fatalf("merged component = %+v ok=%v, want size 4 types 2", c, ok)
	}
}

func TestFlaggingRequiresSizeTypesAndScore(t *testing.T) {
	g := New(Config{MinSize: 3, MinTypes: 2, FlagScore: 1.0})

	// An honest client: fp+ip pair, plenty of (hypothetical) score but
	// size 2 < MinSize — never flagged.
	for range 100 {
		g.Observe([]string{"fp:honest", "ip:home"}, 0.5)
	}
	if g.Flagged("fp:honest") {
		t.Fatal("size-2 component must not flag regardless of score")
	}

	// Structure without evidence: big and diverse, zero score.
	g.Observe([]string{"fp:s1", "ip:x1", "ip:x2", "bk:r1"}, 0)
	if g.Flagged("fp:s1") {
		t.Fatal("zero-score component must not flag")
	}
	// Weak evidence accumulates across observations of the same shared
	// infrastructure until the component crosses the threshold.
	g.Observe([]string{"fp:s1", "ip:x1"}, 0.5)
	if g.Flagged("fp:s1") {
		t.Fatal("score 0.5 < FlagScore 1.0 should not flag yet")
	}
	g.Observe([]string{"fp:s2", "ip:x2"}, 0.6)
	if !g.Flagged("fp:s1") || !g.Flagged("fp:s2") || !g.Flagged("bk:r1") {
		t.Fatal("accumulated weak score across the component should flag every member")
	}
	if !g.FlaggedBytes([]byte("ip:x1")) {
		t.Fatal("FlaggedBytes disagrees with Flagged")
	}
	if g.FlaggedBytes([]byte("ip:unknown")) {
		t.Fatal("unknown key must not be flagged")
	}
	if st := g.Stats(); st.FlaggedComponents != 1 {
		t.Fatalf("want 1 flagged component, got %+v", st)
	}
}

func TestFlagStickyAcrossMerge(t *testing.T) {
	g := New(Config{MinSize: 3, MinTypes: 2, FlagScore: 1.0})
	g.Observe([]string{"fp:a", "ip:1", "bk:1"}, 2.0) // flags immediately
	if !g.Flagged("fp:a") {
		t.Fatal("setup: component should be flagged")
	}
	g.Observe([]string{"fp:clean", "ip:clean"}, 0)
	g.Observe([]string{"fp:clean", "ip:1"}, 0) // merge into flagged component
	if !g.Flagged("fp:clean") {
		t.Fatal("merging into a flagged component should flag the newcomer")
	}
	if st := g.Stats(); st.FlaggedComponents != 1 {
		t.Fatalf("want 1 flagged component after merge, got %+v", st)
	}
}

func TestEvictionBoundsNodesDeterministically(t *testing.T) {
	build := func() *Graph {
		g := New(Config{MaxNodes: 64, MaxEdges: 1024})
		for i := range 200 {
			g.Observe([]string{
				fmt.Sprintf("fp:%03d", i),
				fmt.Sprintf("ip:%03d", i),
			}, 0.1)
		}
		return g
	}
	g1, g2 := build(), build()
	st1, st2 := g1.Stats(), g2.Stats()
	if st1.Nodes > 64 {
		t.Fatalf("node budget exceeded: %+v", st1)
	}
	if st1.Evicted == 0 {
		t.Fatal("expected evictions")
	}
	if st1 != st2 {
		t.Fatalf("eviction nondeterministic: %+v vs %+v", st1, st2)
	}
	// Most recently observed entities survive; the oldest are gone.
	if _, ok := g1.Lookup("fp:199"); !ok {
		t.Fatal("most recent node evicted")
	}
	if _, ok := g1.Lookup("fp:000"); ok {
		t.Fatal("oldest node survived a full-budget eviction")
	}
	// The two graphs agree on exactly which keys survived.
	for i := range 200 {
		k := fmt.Sprintf("fp:%03d", i)
		_, ok1 := g1.Lookup(k)
		_, ok2 := g2.Lookup(k)
		if ok1 != ok2 {
			t.Fatalf("graphs disagree on survivor %s: %v vs %v", k, ok1, ok2)
		}
	}
}

func TestEvictionPreservesFlagsAndScore(t *testing.T) {
	g := New(Config{MaxNodes: 16, MaxEdges: 1024, MinSize: 3, MinTypes: 2, FlagScore: 1.0})
	// Flag a syndicate component, then churn enough one-shot entities to
	// force evictions. The syndicate keys are re-observed throughout, so
	// they stay recent and must stay flagged.
	for i := range 100 {
		g.Observe([]string{"fp:syn", "ip:syn", "bk:syn"}, 0.5)
		g.Observe([]string{
			fmt.Sprintf("fp:churn%04d", i),
			fmt.Sprintf("ip:churn%04d", i),
		}, 0)
	}
	if st := g.Stats(); st.Nodes > 16 || st.Evicted == 0 {
		t.Fatalf("eviction did not bound nodes: %+v", st)
	}
	if !g.Flagged("fp:syn") || !g.Flagged("bk:syn") {
		t.Fatal("sticky flag lost across eviction rebuilds")
	}
	c, ok := g.Lookup("fp:syn")
	if !ok || !c.Flagged || c.Size != 3 {
		t.Fatalf("syndicate component corrupted by eviction: %+v ok=%v", c, ok)
	}
}

func TestEvictionRecountsFlaggedComponents(t *testing.T) {
	g := New(Config{MaxNodes: 16, MaxEdges: 1024, MinSize: 3, MinTypes: 2, FlagScore: 1.0})
	// Flag one component, then stop touching it so decay evicts it whole.
	for range 3 {
		g.Observe([]string{"fp:old", "ip:old", "bk:old"}, 0.5)
	}
	if st := g.Stats(); st.FlaggedComponents != 1 {
		t.Fatalf("setup: %+v", st)
	}
	// A second flagged component stays hot through a churn of one-shot
	// pairs that forces repeated budget evictions.
	for i := range 100 {
		g.Observe([]string{"fp:new", "ip:new", "bk:new"}, 0.5)
		g.Observe([]string{
			fmt.Sprintf("fp:churn%04d", i),
			fmt.Sprintf("ip:churn%04d", i),
		}, 0)
	}
	if _, ok := g.Lookup("fp:old"); ok {
		t.Fatal("cold flagged component survived 100 churn evictions")
	}
	if !g.Flagged("fp:new") {
		t.Fatal("hot flagged component lost its flag")
	}
	// The flagged-component count must be recounted from the rebuilt
	// forest, not carried over: the evicted component no longer counts.
	if st := g.Stats(); st.FlaggedComponents != 1 {
		t.Fatalf("flag count stale after eviction: %+v", st)
	}
}

func TestEdgeBudget(t *testing.T) {
	g := New(Config{MaxNodes: 1 << 10, MaxEdges: 32})
	for i := range 100 {
		g.Observe([]string{"fp:hub", fmt.Sprintf("ip:%03d", i)}, 0)
	}
	if st := g.Stats(); st.Edges > 32 {
		t.Fatalf("edge budget exceeded: %+v", st)
	}
}

func TestObserveSkipsEmptyKeys(t *testing.T) {
	g := New(Config{})
	g.Observe([]string{"", "fp:a", "", "ip:1"}, 0.1)
	g.Observe(nil, 1.0)
	g.Observe([]string{""}, 1.0)
	st := g.Stats()
	if st.Nodes != 2 || st.Observations != 1 {
		t.Fatalf("empty keys mishandled: %+v", st)
	}
	if c, _ := g.Lookup("fp:a"); c.Size != 2 {
		t.Fatalf("empty keys broke linking: %+v", c)
	}
}

func TestSelfLinkObservation(t *testing.T) {
	g := New(Config{})
	g.Observe([]string{"fp:a", "fp:a"}, 0.1)
	st := g.Stats()
	if st.Nodes != 1 || st.Edges != 0 || st.Components != 1 {
		t.Fatalf("self-co-occurrence should be a lone node, got %+v", st)
	}
}

func TestConcurrentLookupsDuringObserve(t *testing.T) {
	g := New(Config{MaxNodes: 128})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []byte("fp:017")
			for {
				select {
				case <-stop:
					return
				default:
					g.FlaggedBytes(key)
					g.Stats()
				}
			}
		}()
	}
	for i := range 2000 {
		g.Observe([]string{
			fmt.Sprintf("fp:%03d", i%40),
			fmt.Sprintf("ip:%03d", i%23),
		}, 0.05)
	}
	close(stop)
	wg.Wait()
}

func BenchmarkFlaggedBytes(b *testing.B) {
	g := New(Config{})
	for i := range 1000 {
		g.Observe([]string{
			fmt.Sprintf("fp:%04d", i),
			fmt.Sprintf("ip:%04d", i%97),
		}, 0.1)
	}
	key := []byte("fp:0500")
	b.ReportAllocs()
	for b.Loop() {
		g.FlaggedBytes(key)
	}
}
