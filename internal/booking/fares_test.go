package booking

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

func TestQuoteWalksTheLadder(t *testing.T) {
	fs := NewFareSchedule(
		FareBucket{Seats: 2, PriceUSD: 79},
		FareBucket{Seats: 2, PriceUSD: 129},
		FareBucket{Seats: 2, PriceUSD: 199},
	)
	cases := []struct {
		occupied int
		want     float64
	}{
		{0, 79}, {1, 79}, {2, 129}, {3, 129}, {4, 199}, {5, 199},
	}
	for _, tc := range cases {
		got, err := fs.Quote(tc.occupied)
		if err != nil {
			t.Fatalf("Quote(%d): %v", tc.occupied, err)
		}
		if got != tc.want {
			t.Fatalf("Quote(%d) = %v, want %v", tc.occupied, got, tc.want)
		}
	}
	if _, err := fs.Quote(6); !errors.Is(err, ErrSoldOut) {
		t.Fatalf("sold-out err = %v", err)
	}
	if got, err := fs.Quote(-5); err != nil || got != 79 {
		t.Fatalf("negative occupancy: %v, %v", got, err)
	}
}

func TestNewFareScheduleSortsByPrice(t *testing.T) {
	fs := NewFareSchedule(
		FareBucket{Seats: 1, PriceUSD: 199},
		FareBucket{Seats: 1, PriceUSD: 79},
	)
	if got, _ := fs.Quote(0); got != 79 {
		t.Fatalf("cheapest first quote %v", got)
	}
}

func TestDefaultFareSchedule(t *testing.T) {
	fs := DefaultFareSchedule(180)
	if fs.Capacity() != 180 {
		t.Fatalf("capacity %d", fs.Capacity())
	}
	if got, _ := fs.Quote(0); got != 79 {
		t.Fatalf("base fare %v", got)
	}
	if fs.BucketIndex(0) != 0 || fs.BucketIndex(60) != 1 || fs.BucketIndex(179) != 2 || fs.BucketIndex(180) != 3 {
		t.Fatal("bucket boundaries wrong")
	}
}

func TestQuoteMonotoneProperty(t *testing.T) {
	fs := DefaultFareSchedule(180)
	f := func(a, b uint8) bool {
		lo, hi := int(a)%180, int(b)%180
		if lo > hi {
			lo, hi = hi, lo
		}
		pl, err1 := fs.Quote(lo)
		ph, err2 := fs.Quote(hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return ph >= pl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteFareReflectsHolds(t *testing.T) {
	start := time.Date(2022, time.May, 2, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewManual(start)
	sys := NewSystem(clock, simrand.New(1), Config{HoldTTL: 30 * time.Minute, MaxNiP: 9})
	sys.AddFlight(Flight{ID: "F", Capacity: 9, Departure: start.Add(72 * time.Hour)})
	fs := NewFareSchedule(
		FareBucket{Seats: 3, PriceUSD: 79},
		FareBucket{Seats: 3, PriceUSD: 129},
		FareBucket{Seats: 3, PriceUSD: 199},
	)
	quote := func() float64 {
		t.Helper()
		v, err := sys.QuoteFare("F", fs)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if quote() != 79 {
		t.Fatal("empty flight not at base fare")
	}
	// A DoI hold of 4 seats pushes the displayed fare up a bucket.
	if _, err := sys.RequestHold(HoldRequest{Flight: "F", Passengers: party(4), ActorID: "doi"}); err != nil {
		t.Fatal(err)
	}
	if quote() != 129 {
		t.Fatalf("fare under holds %v, want 129", quote())
	}
	// The hold expires; the fare falls back.
	clock.Advance(31 * time.Minute)
	if quote() != 79 {
		t.Fatalf("fare after expiry %v, want 79", quote())
	}
}
