package booking

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"funabuse/internal/names"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

var t0 = time.Date(2022, time.May, 2, 8, 0, 0, 0, time.UTC)

func newSystem(t *testing.T, cfg Config) (*System, *simclock.Manual) {
	t.Helper()
	clock := simclock.NewManual(t0)
	sys := NewSystem(clock, simrand.New(1), cfg)
	sys.AddFlight(Flight{
		ID: "AA100/2022-05-09", Airline: "A", Capacity: 180,
		Departure: t0.Add(7 * 24 * time.Hour),
	})
	return sys, clock
}

func party(n int) []names.Identity {
	g := names.NewGenerator(simrand.New(99))
	out := make([]names.Identity, n)
	for i := range out {
		out[i] = g.Realistic()
	}
	return out
}

const flightID = FlightID("AA100/2022-05-09")

func TestHoldBlocksInventory(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	h, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(6), ActorID: "bot"})
	if err != nil {
		t.Fatalf("RequestHold: %v", err)
	}
	if h.NiP != 6 {
		t.Fatalf("NiP = %d", h.NiP)
	}
	av, err := sys.AvailabilityOf(flightID)
	if err != nil {
		t.Fatal(err)
	}
	if av.Held != 6 || av.Available != 174 {
		t.Fatalf("availability %+v", av)
	}
}

func TestHoldExpiresBackToStock(t *testing.T) {
	sys, clock := newSystem(t, Config{HoldTTL: 30 * time.Minute, MaxNiP: 9})
	if _, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(4)}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(29 * time.Minute)
	av, _ := sys.AvailabilityOf(flightID)
	if av.Held != 4 {
		t.Fatalf("hold expired early: %+v", av)
	}
	clock.Advance(2 * time.Minute)
	av, _ = sys.AvailabilityOf(flightID)
	if av.Held != 0 || av.Available != 180 {
		t.Fatalf("hold did not expire: %+v", av)
	}
	if sys.LiveHolds() != 0 {
		t.Fatalf("LiveHolds = %d", sys.LiveHolds())
	}
}

func TestNiPCapEnforced(t *testing.T) {
	sys, _ := newSystem(t, Config{HoldTTL: time.Hour, MaxNiP: 4})
	_, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(5)})
	if !errors.Is(err, ErrNiPCapExceeded) {
		t.Fatalf("err = %v, want ErrNiPCapExceeded", err)
	}
	if _, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(4)}); err != nil {
		t.Fatalf("cap-compliant hold rejected: %v", err)
	}
}

func TestSetMaxNiPMitigation(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	if _, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(6)}); err != nil {
		t.Fatalf("pre-mitigation NiP 6 rejected: %v", err)
	}
	sys.SetMaxNiP(4)
	if _, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(6)}); !errors.Is(err, ErrNiPCapExceeded) {
		t.Fatalf("post-mitigation NiP 6 err = %v", err)
	}
	sys.SetMaxNiP(0) // invalid, ignored
	if sys.Config().MaxNiP != 4 {
		t.Fatal("SetMaxNiP(0) changed the cap")
	}
}

func TestStockExhaustion(t *testing.T) {
	sys, _ := newSystem(t, Config{HoldTTL: time.Hour, MaxNiP: 9})
	held := 0
	for held+9 <= 180 {
		if _, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(9)}); err != nil {
			t.Fatalf("hold at %d seats: %v", held, err)
		}
		held += 9
	}
	_, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(9)})
	if !errors.Is(err, ErrInsufficientStock) {
		t.Fatalf("err = %v, want ErrInsufficientStock", err)
	}
}

func TestDepartedFlightRejects(t *testing.T) {
	sys, clock := newSystem(t, DefaultConfig())
	clock.Advance(8 * 24 * time.Hour)
	_, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(1)})
	if !errors.Is(err, ErrFlightDeparted) {
		t.Fatalf("err = %v, want ErrFlightDeparted", err)
	}
}

func TestUnknownFlight(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	_, err := sys.RequestHold(HoldRequest{Flight: "XX1", Passengers: party(1)})
	if !errors.Is(err, ErrFlightNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyPartyRejected(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	_, err := sys.RequestHold(HoldRequest{Flight: flightID})
	if !errors.Is(err, ErrNiPInvalid) {
		t.Fatalf("err = %v, want ErrNiPInvalid", err)
	}
}

func TestConfirmIssuesTicket(t *testing.T) {
	sys, clock := newSystem(t, DefaultConfig())
	h, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(2)})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := sys.Confirm(h.ID)
	if err != nil {
		t.Fatalf("Confirm: %v", err)
	}
	if len(tk.RecordLocator) != 6 {
		t.Fatalf("record locator %q", tk.RecordLocator)
	}
	if got, ok := sys.TicketByLocator(tk.RecordLocator); !ok || got.Flight != flightID {
		t.Fatal("ticket not retrievable by locator")
	}
	// Sold seats never expire back.
	clock.Advance(24 * time.Hour)
	av, _ := sys.AvailabilityOf(flightID)
	if av.Sold != 2 || av.Held != 0 || av.Available != 178 {
		t.Fatalf("availability after confirm %+v", av)
	}
}

func TestConfirmExpiredHoldFails(t *testing.T) {
	sys, clock := newSystem(t, Config{HoldTTL: 10 * time.Minute, MaxNiP: 9})
	h, _ := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(1)})
	clock.Advance(11 * time.Minute)
	if _, err := sys.Confirm(h.ID); !errors.Is(err, ErrHoldNotFound) {
		t.Fatalf("err = %v, want ErrHoldNotFound (expired)", err)
	}
}

func TestReleaseReturnsSeats(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	h, _ := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(3)})
	if err := sys.Release(h.ID); err != nil {
		t.Fatal(err)
	}
	av, _ := sys.AvailabilityOf(flightID)
	if av.Held != 0 || av.Available != 180 {
		t.Fatalf("availability %+v", av)
	}
	if err := sys.Release(h.ID); !errors.Is(err, ErrHoldNotFound) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestRecordLocatorsUnique(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	seen := map[string]bool{}
	for range 100 {
		h, err := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(1)})
		if err != nil {
			t.Fatal(err)
		}
		tk, err := sys.Confirm(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		if seen[tk.RecordLocator] {
			t.Fatalf("duplicate locator %s", tk.RecordLocator)
		}
		seen[tk.RecordLocator] = true
	}
	if sys.Tickets() != 100 {
		t.Fatalf("Tickets() = %d", sys.Tickets())
	}
}

func TestJournalRecordsOutcomes(t *testing.T) {
	sys, _ := newSystem(t, Config{HoldTTL: time.Hour, MaxNiP: 4})
	_, _ = sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(2), ActorID: "legit"})
	_, _ = sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(6), ActorID: "bot"})
	j := sys.Journal()
	if len(j) != 2 {
		t.Fatalf("journal has %d records", len(j))
	}
	if j[0].Outcome != OutcomeAccepted || j[0].ActorID != "legit" {
		t.Fatalf("first record %+v", j[0])
	}
	if j[1].Outcome != OutcomeRejectedCap || j[1].NiP != 6 {
		t.Fatalf("second record %+v", j[1])
	}
}

func TestNiPHistogramCountsAcceptedOnly(t *testing.T) {
	records := []Record{
		{NiP: 1, Outcome: OutcomeAccepted},
		{NiP: 1, Outcome: OutcomeAccepted},
		{NiP: 6, Outcome: OutcomeAccepted},
		{NiP: 6, Outcome: OutcomeRejectedCap},
		{NiP: 12, Outcome: OutcomeAccepted},
	}
	h := NiPHistogram(records, 9)
	if h[1] != 2 || h[6] != 1 || h[9] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestNiPSharesNormalised(t *testing.T) {
	h := map[int]int{1: 3, 2: 1}
	shares := NiPShares(h, 4)
	if len(shares) != 4 {
		t.Fatalf("len = %d", len(shares))
	}
	if shares[0] != 0.75 || shares[1] != 0.25 || shares[2] != 0 {
		t.Fatalf("shares %v", shares)
	}
	empty := NiPShares(map[int]int{}, 4)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty histogram produced non-zero share")
		}
	}
}

func TestSeatHours(t *testing.T) {
	records := []Record{
		{Flight: flightID, NiP: 6, Outcome: OutcomeAccepted},
		{Flight: flightID, NiP: 6, Outcome: OutcomeAccepted},
		{Flight: "other", NiP: 6, Outcome: OutcomeAccepted},
		{Flight: flightID, NiP: 6, Outcome: OutcomeRejectedStock},
	}
	got := SeatHours(records, flightID, 30*time.Minute)
	if got != 6 { // 2 holds * 6 seats * 0.5h
		t.Fatalf("SeatHours = %v, want 6", got)
	}
}

func TestFormatNiP(t *testing.T) {
	if FormatNiP(3, 7) != "3" || FormatNiP(7, 7) != "7+" || FormatNiP(9, 7) != "7+" {
		t.Fatal("FormatNiP wrong")
	}
}

func TestJournalBetween(t *testing.T) {
	sys, clock := newSystem(t, DefaultConfig())
	for range 3 {
		_, _ = sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(1)})
		clock.Advance(time.Hour)
	}
	got := sys.JournalBetween(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if len(got) != 2 {
		t.Fatalf("JournalBetween returned %d", len(got))
	}
}

func TestInventoryConservationProperty(t *testing.T) {
	// Invariant: held + sold + available == capacity after any operation mix.
	f := func(seed uint64, ops []uint8) bool {
		clock := simclock.NewManual(t0)
		sys := NewSystem(clock, simrand.New(seed), Config{HoldTTL: 20 * time.Minute, MaxNiP: 9})
		sys.AddFlight(Flight{ID: "F", Capacity: 60, Departure: t0.Add(72 * time.Hour)})
		rng := simrand.New(seed)
		var live []HoldID
		for _, op := range ops {
			switch op % 4 {
			case 0:
				h, err := sys.RequestHold(HoldRequest{Flight: "F", Passengers: party(1 + rng.Intn(9))})
				if err == nil {
					live = append(live, h.ID)
				}
			case 1:
				if len(live) > 0 {
					_, _ = sys.Confirm(live[rng.Intn(len(live))])
				}
			case 2:
				if len(live) > 0 {
					_ = sys.Release(live[rng.Intn(len(live))])
				}
			case 3:
				clock.Advance(time.Duration(rng.Intn(30)) * time.Minute)
			}
			av, err := sys.AvailabilityOf("F")
			if err != nil {
				return false
			}
			if av.Held+av.Sold+av.Available != av.Capacity {
				return false
			}
			if av.Held < 0 || av.Sold < 0 || av.Available < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHoldInfoCopies(t *testing.T) {
	sys, _ := newSystem(t, DefaultConfig())
	h, _ := sys.RequestHold(HoldRequest{Flight: flightID, Passengers: party(2)})
	info, ok := sys.HoldInfo(h.ID)
	if !ok {
		t.Fatal("HoldInfo missing live hold")
	}
	info.Passengers[0].First = "MUTATED"
	again, _ := sys.HoldInfo(h.ID)
	if again.Passengers[0].First == "MUTATED" {
		t.Fatal("HoldInfo exposed internal passenger slice")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeAccepted.String() != "accepted" || OutcomeRejectedCap.String() != "rejected-cap" {
		t.Fatal("Outcome.String wrong")
	}
	if Outcome(42).String() != "Outcome(42)" {
		t.Fatal("unknown outcome string wrong")
	}
}
