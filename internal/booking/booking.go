// Package booking is the airline reservation substrate targeted by the
// Denial of Inventory / Seat Spinning attacks.
//
// It implements the exploited feature faithfully: selecting seats creates a
// temporary hold — no payment — that blocks inventory for a configurable
// duration (the paper reports 30 minutes to several hours depending on the
// domain) before expiring back into stock. Attackers re-issue holds as each
// one expires; legitimate buyers confirm holds into tickets.
//
// Every hold attempt, successful or not, is journalled with its
// Number in Party (NiP), ground-truth actor and outcome, which is the raw
// material for the paper's Fig. 1 and the anomaly detectors.
package booking

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"funabuse/internal/names"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

// Sentinel errors callers match on.
var (
	ErrFlightNotFound    = errors.New("booking: flight not found")
	ErrFlightDeparted    = errors.New("booking: flight already departed")
	ErrNiPCapExceeded    = errors.New("booking: party size exceeds reservation cap")
	ErrNiPInvalid        = errors.New("booking: party size must be at least 1")
	ErrInsufficientStock = errors.New("booking: not enough seats available")
	ErrHoldNotFound      = errors.New("booking: hold not found")
)

// FlightID identifies one flight instance (number + date).
type FlightID string

// Flight is one departure with finite seat stock.
type Flight struct {
	ID        FlightID
	Airline   string
	Capacity  int
	Departure time.Time
}

// HoldID identifies a temporary reservation.
type HoldID uint64

// Outcome classifies a hold attempt in the journal.
type Outcome int

// Hold attempt outcomes.
const (
	OutcomeAccepted Outcome = iota + 1
	OutcomeRejectedCap
	OutcomeRejectedStock
	OutcomeRejectedDeparted
	OutcomeRejectedInvalid
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeRejectedCap:
		return "rejected-cap"
	case OutcomeRejectedStock:
		return "rejected-stock"
	case OutcomeRejectedDeparted:
		return "rejected-departed"
	case OutcomeRejectedInvalid:
		return "rejected-invalid"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Hold is a live temporary reservation.
type Hold struct {
	ID         HoldID
	Flight     FlightID
	NiP        int
	Passengers []names.Identity
	CreatedAt  time.Time
	ExpiresAt  time.Time
	// ActorID tags the originating simulated actor for evaluation.
	ActorID string
}

// Record is one journalled hold attempt. Accepted records carry the
// submitted passenger identities: the paper's case study B shows passenger
// details are the decisive detection signal for Seat Spinning.
type Record struct {
	Time       time.Time
	Flight     FlightID
	NiP        int
	Outcome    Outcome
	ActorID    string
	HoldID     HoldID
	Passengers []names.Identity
}

// Ticket is a confirmed purchase with an airline record locator, the handle
// the boarding-pass (and thus SMS pumping) flow operates on.
type Ticket struct {
	RecordLocator string
	Flight        FlightID
	Passengers    []names.Identity
	IssuedAt      time.Time
}

// Config parameterises the reservation system.
type Config struct {
	// HoldTTL is how long a seat hold blocks inventory before expiring.
	HoldTTL time.Duration
	// MaxNiP is the maximum party size per reservation. The paper's
	// Airline A allowed up to 9 before the mitigation capped it at 4.
	MaxNiP int
}

// DefaultConfig mirrors the pre-attack Airline A posture.
func DefaultConfig() Config {
	return Config{HoldTTL: 30 * time.Minute, MaxNiP: 9}
}

// System is the reservation engine. It is single-threaded by design: the
// simulator drives it from one event loop (see internal/simclock).
type System struct {
	clock  simclock.Clock
	cfg    Config
	rng    *simrand.RNG
	nextID HoldID

	flights map[FlightID]*flightState
	holds   map[HoldID]*Hold
	// expiry is a time-ordered index of live holds.
	journal []Record
	tickets map[string]Ticket
}

type flightState struct {
	flight Flight
	held   int
	sold   int
}

// NewSystem returns a System reading time from clock and drawing record
// locators from rng.
func NewSystem(clock simclock.Clock, rng *simrand.RNG, cfg Config) *System {
	if cfg.HoldTTL <= 0 {
		cfg.HoldTTL = DefaultConfig().HoldTTL
	}
	if cfg.MaxNiP <= 0 {
		cfg.MaxNiP = DefaultConfig().MaxNiP
	}
	return &System{
		clock:   clock,
		cfg:     cfg,
		rng:     rng,
		flights: make(map[FlightID]*flightState),
		holds:   make(map[HoldID]*Hold),
		tickets: make(map[string]Ticket),
	}
}

// Config returns the current configuration.
func (s *System) Config() Config { return s.cfg }

// SetMaxNiP applies the party-size cap mitigation at runtime.
func (s *System) SetMaxNiP(n int) {
	if n >= 1 {
		s.cfg.MaxNiP = n
	}
}

// SetHoldTTL adjusts the hold duration at runtime (ablation knob).
func (s *System) SetHoldTTL(d time.Duration) {
	if d > 0 {
		s.cfg.HoldTTL = d
	}
}

// AddFlight registers a flight. Re-adding an existing ID resets its state.
func (s *System) AddFlight(f Flight) {
	s.flights[f.ID] = &flightState{flight: f}
}

// Flights returns all flight IDs in sorted order.
func (s *System) Flights() []FlightID {
	out := make([]FlightID, 0, len(s.flights))
	for id := range s.flights {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HoldRequest asks to block nip seats on a flight.
type HoldRequest struct {
	Flight     FlightID
	Passengers []names.Identity
	ActorID    string
}

// RequestHold attempts a temporary reservation. Expired holds are collected
// first so inventory reflects virtual time. Every attempt is journalled.
func (s *System) RequestHold(req HoldRequest) (*Hold, error) {
	now := s.clock.Now()
	s.ExpireDue(now)

	nip := len(req.Passengers)
	// passengers is the single defensive copy of the request's identities;
	// the accepted journal record, the Hold and any Ticket confirmed from it
	// all share this immutable backing array.
	record := func(out Outcome, id HoldID, passengers []names.Identity) {
		s.journal = append(s.journal, Record{
			Time: now, Flight: req.Flight, NiP: nip, Outcome: out,
			ActorID: req.ActorID, HoldID: id, Passengers: passengers,
		})
	}

	fs, ok := s.flights[req.Flight]
	if !ok {
		return nil, ErrFlightNotFound
	}
	if nip < 1 {
		record(OutcomeRejectedInvalid, 0, nil)
		return nil, ErrNiPInvalid
	}
	if !now.Before(fs.flight.Departure) {
		record(OutcomeRejectedDeparted, 0, nil)
		return nil, ErrFlightDeparted
	}
	if nip > s.cfg.MaxNiP {
		record(OutcomeRejectedCap, 0, nil)
		return nil, fmt.Errorf("%w: %d > %d", ErrNiPCapExceeded, nip, s.cfg.MaxNiP)
	}
	if fs.held+fs.sold+nip > fs.flight.Capacity {
		record(OutcomeRejectedStock, 0, nil)
		return nil, ErrInsufficientStock
	}

	s.nextID++
	passengers := append([]names.Identity(nil), req.Passengers...)
	h := &Hold{
		ID:         s.nextID,
		Flight:     req.Flight,
		NiP:        nip,
		Passengers: passengers,
		CreatedAt:  now,
		ExpiresAt:  now.Add(s.cfg.HoldTTL),
		ActorID:    req.ActorID,
	}
	fs.held += nip
	s.holds[h.ID] = h
	record(OutcomeAccepted, h.ID, passengers)
	return h, nil
}

// Confirm converts a live hold into a ticket (payment completed).
func (s *System) Confirm(id HoldID) (Ticket, error) {
	now := s.clock.Now()
	s.ExpireDue(now)
	h, ok := s.holds[id]
	if !ok {
		return Ticket{}, ErrHoldNotFound
	}
	fs := s.flights[h.Flight]
	fs.held -= h.NiP
	fs.sold += h.NiP
	delete(s.holds, id)

	t := Ticket{
		RecordLocator: s.newRecordLocator(),
		Flight:        h.Flight,
		Passengers:    h.Passengers,
		IssuedAt:      now,
	}
	s.tickets[t.RecordLocator] = t
	return t, nil
}

// Release cancels a live hold, returning its seats to stock.
func (s *System) Release(id HoldID) error {
	s.ExpireDue(s.clock.Now())
	h, ok := s.holds[id]
	if !ok {
		return ErrHoldNotFound
	}
	s.flights[h.Flight].held -= h.NiP
	delete(s.holds, id)
	return nil
}

// ExpireDue releases every hold whose TTL elapsed at or before now and
// returns how many holds expired.
func (s *System) ExpireDue(now time.Time) int {
	var due []HoldID
	for id, h := range s.holds {
		if !h.ExpiresAt.After(now) {
			due = append(due, id)
		}
	}
	// Deterministic release order.
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, id := range due {
		h := s.holds[id]
		s.flights[h.Flight].held -= h.NiP
		delete(s.holds, id)
	}
	return len(due)
}

// HoldInfo returns a copy of a live hold.
func (s *System) HoldInfo(id HoldID) (Hold, bool) {
	h, ok := s.holds[id]
	if !ok {
		return Hold{}, false
	}
	cp := *h
	cp.Passengers = append([]names.Identity(nil), h.Passengers...)
	return cp, true
}

// LiveHolds returns the number of live holds.
func (s *System) LiveHolds() int { return len(s.holds) }

// Availability describes a flight's current inventory split.
type Availability struct {
	Capacity  int
	Held      int
	Sold      int
	Available int
}

// AvailabilityOf reports current inventory for a flight.
func (s *System) AvailabilityOf(id FlightID) (Availability, error) {
	s.ExpireDue(s.clock.Now())
	fs, ok := s.flights[id]
	if !ok {
		return Availability{}, ErrFlightNotFound
	}
	return Availability{
		Capacity:  fs.flight.Capacity,
		Held:      fs.held,
		Sold:      fs.sold,
		Available: fs.flight.Capacity - fs.held - fs.sold,
	}, nil
}

// TicketByLocator resolves a record locator.
func (s *System) TicketByLocator(loc string) (Ticket, bool) {
	t, ok := s.tickets[loc]
	return t, ok
}

// TicketExists reports whether loc identifies an issued ticket. It
// satisfies the sms package's TicketResolver.
func (s *System) TicketExists(loc string) bool {
	_, ok := s.tickets[loc]
	return ok
}

// Tickets returns the number of issued tickets.
func (s *System) Tickets() int { return len(s.tickets) }

// Journal returns a copy of the hold-attempt journal.
func (s *System) Journal() []Record {
	out := make([]Record, len(s.journal))
	copy(out, s.journal)
	return out
}

// JournalBetween returns journal records with from <= Time < to.
func (s *System) JournalBetween(from, to time.Time) []Record {
	var out []Record
	for _, r := range s.journal {
		if !r.Time.Before(from) && r.Time.Before(to) {
			out = append(out, r)
		}
	}
	return out
}

// locatorAlphabet excludes ambiguous characters, as airline PNRs do.
const locatorAlphabet = "ABCDEFGHJKLMNPQRSTUVWXYZ23456789"

func (s *System) newRecordLocator() string {
	for {
		var b [6]byte
		for i := range b {
			b[i] = locatorAlphabet[s.rng.Intn(len(locatorAlphabet))]
		}
		loc := string(b[:])
		if _, dup := s.tickets[loc]; !dup {
			return loc
		}
	}
}

// NiPHistogram counts accepted holds per party size over a journal slice —
// the quantity plotted in the paper's Fig. 1. Buckets above maxBucket are
// folded into maxBucket (the figure folds 7+).
func NiPHistogram(records []Record, maxBucket int) map[int]int {
	if maxBucket < 1 {
		maxBucket = 9
	}
	h := make(map[int]int)
	for _, r := range records {
		if r.Outcome != OutcomeAccepted {
			continue
		}
		b := r.NiP
		if b > maxBucket {
			b = maxBucket
		}
		h[b]++
	}
	return h
}

// NiPShares normalises a histogram into per-bucket shares. Buckets run
// 1..maxBucket; missing buckets are zero.
func NiPShares(hist map[int]int, maxBucket int) []float64 {
	total := 0
	for _, n := range hist {
		total += n
	}
	out := make([]float64, maxBucket)
	if total == 0 {
		return out
	}
	for b, n := range hist {
		if b >= 1 && b <= maxBucket {
			out[b-1] = float64(n) / float64(total)
		}
	}
	return out
}

// SeatHours integrates held-seat time over the journal for one flight: the
// damage metric for DoI (how much inventory-time the attack removed from
// sale). It assumes every accepted hold ran its full TTL unless confirmed
// earlier; for the DoI experiments attackers never confirm, so this matches.
func SeatHours(records []Record, flight FlightID, ttl time.Duration) float64 {
	var total float64
	for _, r := range records {
		if r.Flight == flight && r.Outcome == OutcomeAccepted {
			total += float64(r.NiP) * ttl.Hours()
		}
	}
	return total
}

// FormatNiP renders a party-size bucket label ("1", "2", ... "7+").
func FormatNiP(bucket, maxBucket int) string {
	if bucket >= maxBucket {
		return strconv.Itoa(maxBucket) + "+"
	}
	return strconv.Itoa(bucket)
}
