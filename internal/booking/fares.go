package booking

import (
	"errors"
	"sort"
)

// Fare buckets model airline revenue management: a flight's seats are sold
// in classes of increasing price, and the displayed fare is the cheapest
// class with inventory left. Because temporary holds consume bucket
// inventory exactly like sales, a Denial-of-Inventory attack moves the
// displayed fare up the ladder for everyone else — the dynamic-pricing
// manipulation motive the paper's Section II-A describes.

// FareBucket is one fare class: a seat allocation at a price.
type FareBucket struct {
	Seats    int
	PriceUSD float64
}

// FareSchedule is a flight's fare ladder, cheapest first.
type FareSchedule []FareBucket

// ErrSoldOut is returned by Quote when no bucket has inventory left.
var ErrSoldOut = errors.New("booking: all fare buckets exhausted")

// NewFareSchedule returns a ladder; buckets are sorted by price.
func NewFareSchedule(buckets ...FareBucket) FareSchedule {
	fs := make(FareSchedule, len(buckets))
	copy(fs, buckets)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].PriceUSD < fs[j].PriceUSD })
	return fs
}

// DefaultFareSchedule splits capacity into three equal classes at a
// short-haul price ladder.
func DefaultFareSchedule(capacity int) FareSchedule {
	per := capacity / 3
	return NewFareSchedule(
		FareBucket{Seats: per, PriceUSD: 79},
		FareBucket{Seats: per, PriceUSD: 129},
		FareBucket{Seats: capacity - 2*per, PriceUSD: 199},
	)
}

// Capacity returns the total seats across buckets.
func (fs FareSchedule) Capacity() int {
	total := 0
	for _, b := range fs {
		total += b.Seats
	}
	return total
}

// Quote returns the displayed fare when occupied seats (sold plus held)
// are unavailable: the price of the cheapest bucket with space.
func (fs FareSchedule) Quote(occupied int) (float64, error) {
	if occupied < 0 {
		occupied = 0
	}
	remaining := occupied
	for _, b := range fs {
		if remaining < b.Seats {
			return b.PriceUSD, nil
		}
		remaining -= b.Seats
	}
	return 0, ErrSoldOut
}

// BucketIndex returns which fare class the displayed fare sits in at the
// given occupancy, or len(fs) when sold out.
func (fs FareSchedule) BucketIndex(occupied int) int {
	if occupied < 0 {
		occupied = 0
	}
	remaining := occupied
	for i, b := range fs {
		if remaining < b.Seats {
			return i
		}
		remaining -= b.Seats
	}
	return len(fs)
}

// QuoteFare returns the flight's displayed fare under schedule fs, counting
// both sold and held seats as unavailable — the behaviour attackers
// exploit.
func (s *System) QuoteFare(id FlightID, fs FareSchedule) (float64, error) {
	av, err := s.AvailabilityOf(id)
	if err != nil {
		return 0, err
	}
	return fs.Quote(av.Held + av.Sold)
}
