package booking_test

import (
	"fmt"
	"time"

	"funabuse/internal/booking"
	"funabuse/internal/names"
	"funabuse/internal/simclock"
	"funabuse/internal/simrand"
)

// Example walks the exploited feature end to end: a seat hold blocks
// inventory without payment, expires back into stock on its TTL, and a
// confirmed hold becomes a ticket with a record locator.
func Example() {
	start := time.Date(2022, time.May, 2, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewManual(start)
	sys := booking.NewSystem(clock, simrand.New(1), booking.Config{
		HoldTTL: 30 * time.Minute,
		MaxNiP:  9,
	})
	sys.AddFlight(booking.Flight{
		ID: "FA100", Capacity: 180, Departure: start.Add(7 * 24 * time.Hour),
	})

	passenger := names.NewGenerator(simrand.New(2)).Realistic()
	hold, err := sys.RequestHold(booking.HoldRequest{
		Flight:     "FA100",
		Passengers: []names.Identity{passenger},
		ActorID:    "customer-1",
	})
	if err != nil {
		fmt.Println("hold failed:", err)
		return
	}
	av, _ := sys.AvailabilityOf("FA100")
	fmt.Printf("after hold: %d held, %d open\n", av.Held, av.Available)

	// The customer walks away; the hold expires back into stock.
	clock.Advance(31 * time.Minute)
	av, _ = sys.AvailabilityOf("FA100")
	fmt.Printf("after expiry: %d held, %d open\n", av.Held, av.Available)

	// A second hold is confirmed into a ticket.
	hold, _ = sys.RequestHold(booking.HoldRequest{
		Flight:     "FA100",
		Passengers: []names.Identity{passenger},
		ActorID:    "customer-1",
	})
	ticket, _ := sys.Confirm(hold.ID)
	fmt.Printf("ticket issued: locator has %d chars, %d sold\n",
		len(ticket.RecordLocator), 1)

	// Output:
	// after hold: 1 held, 179 open
	// after expiry: 0 held, 180 open
	// ticket issued: locator has 6 chars, 1 sold
}

// ExampleNiPHistogram shows the Fig. 1 aggregation: party-size counts over
// accepted reservations.
func ExampleNiPHistogram() {
	records := []booking.Record{
		{NiP: 1, Outcome: booking.OutcomeAccepted},
		{NiP: 1, Outcome: booking.OutcomeAccepted},
		{NiP: 2, Outcome: booking.OutcomeAccepted},
		{NiP: 6, Outcome: booking.OutcomeAccepted},
		{NiP: 6, Outcome: booking.OutcomeRejectedCap}, // rejected: not counted
	}
	hist := booking.NiPHistogram(records, 9)
	shares := booking.NiPShares(hist, 9)
	fmt.Printf("NiP1=%d NiP2=%d NiP6=%d share6=%.2f\n",
		hist[1], hist[2], hist[6], shares[5])
	// Output:
	// NiP1=2 NiP2=1 NiP6=1 share6=0.25
}
