module funabuse

go 1.24
