package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"funabuse/internal/cluster"
	"funabuse/internal/faultinject"
	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/obs"
	"funabuse/internal/resilience"
	"funabuse/internal/simclock"
)

// The partition scenario (E16) replays the distributed low-and-slow plan
// against a 4-node fleet whose gossip travels real loopback sockets
// (HTTPTransport in the FGS1 wire form) through a seeded FaultTransport,
// and measures what a lossy, laggy, partitioned network costs the
// fleet-view defence:
//
//   - a drop-probability sweep: leak rate rises monotonically as gossip
//     drops starve the merged view, and one fetch retry at the same 0.6
//     drop rate recovers most of the failed exchanges (and with them the
//     degraded-response count);
//   - a propagation-delay sweep: stale snapshots delay the threshold
//     crossing in proportion to the injected lag;
//   - a healed-partition timeline: with the fleet split {0,1}|{2,3}
//     during the cut window, neither side's view reaches the threshold —
//     nodes degrade and keep serving on last-known state — and the first
//     post-heal exchange merges the halves and lands the block rule.
//
// Under virtual pacing every arm is bit-deterministic per seed: fault
// draws come from one seeded stream serialized under the transport mutex,
// the anti-entropy loop fetches serially, and link cuts are pure
// functions of the shared manual clock.

// Partition-scenario fleet shape. The rule threshold is chosen against
// the low-and-slow plan's arithmetic: the full 4-node fleet view reaches
// ~120 in-window observations per attacking fingerprint at steady state,
// one partitioned half (two fresh nodes plus the other side's decaying
// pre-cut sketches) peaks near 90 — so 100 is only crossable merged.
const (
	partitionNodes         = 4
	partitionGossip        = 2 * time.Second
	partitionRuleThreshold = 100
	partitionRuleWindow    = 20 * time.Second
	partitionBucket        = 5 * time.Second
	partitionCutStart      = 15 * time.Second
	partitionCutLen        = 20 * time.Second
)

// partitionArm is one fault plan the shared plan is replayed against.
type partitionArm struct {
	name    string
	group   string // report section: "drop", "delay", "timeline"
	drop    float64
	delay   time.Duration // served-snapshot minimum age; 0 disables
	retries int           // FetchRetry.Attempts; 0 selects 1 (no retry)
	cut     bool          // partition {0,1}|{2,3} during the cut window
}

// partitionArms: the drop sweep (with a retry arm at the same drop rate),
// the delay sweep, and the healed-partition pair.
var partitionArms = []partitionArm{
	{name: "clean", group: "drop"},
	{name: "drop p=0.3", group: "drop", drop: 0.3},
	{name: "drop p=0.6", group: "drop", drop: 0.6},
	{name: "drop p=0.6 retry", group: "drop", drop: 0.6, retries: 2},
	{name: "drop p=0.9", group: "drop", drop: 0.9},
	{name: "delay 4s", group: "delay", delay: 4 * time.Second},
	{name: "delay 8s", group: "delay", delay: 8 * time.Second},
	{name: "healthy", group: "timeline"},
	{name: "partitioned", group: "timeline", cut: true},
}

// bucketTally accumulates one timeline bucket's outcomes.
type bucketTally struct {
	abusiveDone     int
	abusiveAdmitted int
	degraded        int
}

// partitionOutcome is one arm's measurements, joined for the report.
type partitionOutcome struct {
	arm     partitionArm
	result  *loadgen.Result
	stats   cluster.Stats
	faults  cluster.FaultStats
	reasons map[string]uint64
	// firstRule is the first origination instant relative to plan start;
	// negative when no rule originated.
	firstRule time.Duration
	buckets   []bucketTally
}

// runPartition replays the seeded low-and-slow plan against every fault
// arm and reports the three sections.
func runPartition(opts options, stdout, stderr io.Writer) error {
	start := loadsimEpoch
	if opts.loadReal {
		start = time.Now()
	}
	sc := loadgen.LowAndSlowScenario(opts.seed, start)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if opts.telemetry != nil || opts.serve != "" {
		reg = opts.telemetry
		if reg == nil {
			reg = obs.NewRegistry()
		}
		reg.Gauge("fraudsim_seed").Set(float64(opts.seed))
		reg.Gauge("fraudsim_scenario_info",
			obs.Label{Name: "scenario", Value: "partition"}).Set(1)
		reg.Help("fraudsim_scenario_info", "Constant 1; the scenario label identifies the run.")
	}
	if opts.serve != "" {
		ring := opts.traces
		if ring == nil {
			ring = obs.NewTraceRing(obs.DefaultTraceCapacity)
		}
		srv, err := serveTelemetry(opts.serve, reg, ring, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	outcomes, err := partitionOutcomes(opts, plan, reg, stderr)
	if err != nil {
		return err
	}

	fmt.Fprint(stdout, partitionSweepReport("partition drop sweep", outcomes, "drop").String())
	fmt.Fprint(stdout, partitionSweepReport("partition delay sweep", outcomes, "delay").String())
	fmt.Fprint(stdout, partitionTimelineReport(outcomes, start).String())

	if opts.stayUp && opts.serve != "" {
		waitForInterrupt(stderr)
	}
	return nil
}

// partitionOutcomes replays the plan against every arm in order.
func partitionOutcomes(opts options, plan *loadgen.Plan, reg *obs.Registry, stderr io.Writer) ([]partitionOutcome, error) {
	outcomes := make([]partitionOutcome, 0, len(partitionArms))
	for _, arm := range partitionArms {
		out, err := runPartitionArm(opts, plan, arm, reg, stderr)
		if err != nil {
			return nil, fmt.Errorf("arm %q: %w", arm.name, err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// runPartitionArm boots a fresh socket-gossip fleet behind the arm's
// fault plan, replays the shared plan through its routing front, and
// tears everything down.
func runPartitionArm(opts options, plan *loadgen.Plan, arm partitionArm, reg *obs.Registry, stderr io.Writer) (partitionOutcome, error) {
	start := plan.Scenario.Start

	// Gossip rides real loopback sockets: one HTTP transport serves every
	// node's snapshot and fetches each back through its own listener.
	httpTr := cluster.NewHTTPTransport(nil)
	gossipURL, closeGossip, err := httpTr.Serve()
	if err != nil {
		return partitionOutcome{}, err
	}
	defer func() { _ = closeGossip() }()
	for i := range partitionNodes {
		httpTr.SetPeer(i, gossipURL)
	}

	var manual *simclock.Manual
	var clk simclock.Clock
	if !opts.loadReal {
		manual = simclock.NewManual(start)
		clk = manual
	}
	fcfg := cluster.FaultConfig{
		Seed:     opts.seed,
		Clock:    clk,
		DropRate: arm.drop,
	}
	if arm.delay > 0 {
		fcfg.DelayRate = 1
		fcfg.Delay = arm.delay
	}
	if arm.cut {
		fcfg.Links = cluster.PartitionLinks([]int{0, 1}, []int{2, 3},
			faultinject.Schedule{
				Start:  start.Add(partitionCutStart),
				Period: time.Hour,
				Down:   partitionCutLen,
			})
	}
	faultTr := cluster.NewFaultTransport(httpTr, fcfg)

	ccfg := cluster.Config{
		Nodes:          partitionNodes,
		Clock:          clk,
		Router:         cluster.NewRandomRouter(opts.seed),
		Transport:      faultTr,
		Gossip:         partitionGossip,
		ReplicateRules: true,
		ReplicateState: true,
		FetchRetry:     resilience.RetryConfig{Attempts: max(arm.retries, 1)},
		RuleThreshold:  partitionRuleThreshold,
		RuleWindow:     partitionRuleWindow,
		RulePaths:      []string{loadgen.PathHold, loadgen.PathSMS},
	}
	fleet, err := cluster.Start(ccfg)
	if err != nil {
		return partitionOutcome{}, err
	}
	defer fleet.Close()
	fmt.Fprintf(stderr, "fraudsim: partition arm %q driving %s (gossip via %s)\n",
		arm.name, fleet.URL, gossipURL)

	// The Observe hook buckets outcomes by arrival time for the timeline:
	// abusive leak and degraded-response stamps per window.
	var mu sync.Mutex
	var buckets []bucketTally
	observe := func(o loadgen.Observation) {
		idx := int(o.Arrival.At.Sub(start) / partitionBucket)
		if idx < 0 {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for len(buckets) <= idx {
			buckets = append(buckets, bucketTally{})
		}
		b := &buckets[idx]
		if o.Header.Get(cluster.FleetDegradedHeader) != "" {
			b.degraded++
		}
		if plan.Scenario.Classes[o.Arrival.Class].Kind.Abusive() && o.Status != 0 {
			b.abusiveDone++
			if o.Verdict == "" && o.Status < 400 {
				b.abusiveAdmitted++
			}
		}
	}

	runner, err := loadgen.NewRunner(loadgen.RunnerConfig{
		Plan:      plan,
		BaseURL:   fleet.URL,
		Workers:   opts.loadWorkers,
		Virtual:   manual,
		Telemetry: reg,
		Arm:       arm.name,
		Observe:   observe,
	})
	if err != nil {
		return partitionOutcome{}, err
	}
	res, err := runner.Run()
	if err != nil {
		return partitionOutcome{}, err
	}

	out := partitionOutcome{
		arm:       arm,
		result:    res,
		stats:     fleet.Cluster.Stats(),
		faults:    faultTr.Stats(),
		reasons:   fleet.Cluster.FailuresByReason(),
		firstRule: -1,
		buckets:   buckets,
	}
	if rules := fleet.Cluster.Rules(); len(rules) > 0 {
		out.firstRule = rules[0].At.Sub(start)
	}
	return out, nil
}

// partitionSweepReport renders one sweep section: arms of the given group
// as columns, fault/replication/leak measurements as rows.
func partitionSweepReport(title string, outcomes []partitionOutcome, group string) *metrics.Table {
	var cols []partitionOutcome
	for _, o := range outcomes {
		if o.arm.group == group {
			cols = append(cols, o)
		}
	}
	headers := append(make([]string, 0, len(cols)+1), "Metric")
	for _, o := range cols {
		headers = append(headers, o.arm.name)
	}
	t := metrics.NewTable(title, headers...)
	row := func(label string, cell func(partitionOutcome) string) {
		cells := append(make([]string, 0, len(cols)+1), label)
		for _, o := range cols {
			cells = append(cells, cell(o))
		}
		t.AddRow(cells...)
	}

	row("plan hash", func(o partitionOutcome) string {
		return fmt.Sprintf("%016x", o.result.PlanHash)
	})
	row("gossip rounds", func(o partitionOutcome) string {
		return metrics.FormatInt(int64(o.stats.GossipRounds))
	})
	row("fetches faulted", func(o partitionOutcome) string {
		return metrics.FormatInt(int64(o.faults.Cuts + o.faults.Drops + o.faults.Delays))
	})
	row("fetch failures", func(o partitionOutcome) string {
		return metrics.FormatInt(int64(o.stats.FetchFailures))
	})
	row("degraded responses", func(o partitionOutcome) string {
		return metrics.FormatInt(int64(o.stats.DegradedResponses))
	})
	row("rules originated", func(o partitionOutcome) string {
		return metrics.FormatInt(int64(o.stats.RulesOriginated))
	})
	row("rules replicated", func(o partitionOutcome) string {
		return metrics.FormatInt(int64(o.stats.RulesReplicated))
	})
	row("first rule at", func(o partitionOutcome) string {
		if o.firstRule < 0 {
			return "never"
		}
		return "+" + o.firstRule.Round(time.Millisecond).String()
	})
	row("attacker leak rate", func(o partitionOutcome) string {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", rate)
	})
	row("honest admit rate", func(o partitionOutcome) string {
		var admitted, done uint64
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			admitted += c.Admitted
			done += c.Completed()
		}
		if done == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(admitted)/float64(done))
	})
	return t
}

// partitionTimelineReport renders the healed-partition timeline: per
// 5-second window, the abusive leak with and without the cut, plus the
// degraded-response stamps the cut produces. The partitioned fleet leaks
// through the whole cut — both halves keep serving below threshold — and
// converges to the healthy arm's blocked state after the first post-heal
// exchanges.
func partitionTimelineReport(outcomes []partitionOutcome, start time.Time) *metrics.Table {
	var healthy, parted *partitionOutcome
	for i := range outcomes {
		switch outcomes[i].arm.name {
		case "healthy":
			healthy = &outcomes[i]
		case "partitioned":
			parted = &outcomes[i]
		}
	}
	t := metrics.NewTable(
		fmt.Sprintf("healed partition timeline (cut +%s..+%s)",
			partitionCutStart, partitionCutStart+partitionCutLen),
		"Window", "healthy leak", "partitioned leak", "partitioned degraded")
	leak := func(b bucketTally) string {
		if b.abusiveDone == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", float64(b.abusiveAdmitted)/float64(b.abusiveDone))
	}
	n := max(len(healthy.buckets), len(parted.buckets))
	for i := range n {
		var hb, pb bucketTally
		if i < len(healthy.buckets) {
			hb = healthy.buckets[i]
		}
		if i < len(parted.buckets) {
			pb = parted.buckets[i]
		}
		t.AddRow(
			fmt.Sprintf("+%02ds..+%02ds",
				i*int(partitionBucket/time.Second), (i+1)*int(partitionBucket/time.Second)),
			leak(hb), leak(pb), metrics.FormatInt(int64(pb.degraded)))
	}
	t.AddRow("first rule",
		fmtFirstRule(healthy.firstRule), fmtFirstRule(parted.firstRule), "")
	return t
}

func fmtFirstRule(d time.Duration) string {
	if d < 0 {
		return "never"
	}
	return "+" + d.Round(time.Millisecond).String()
}
