package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"funabuse/internal/loadgen"
)

// TestPartitionDeterministic runs the virtual-paced partition scenario —
// gossip over real loopback sockets through the seeded fault transport —
// with one seed across different worker counts and again with the same
// options, requiring byte-identical reports each time. Socket transport
// and injected faults must not cost the E16 determinism guarantee.
func TestPartitionDeterministic(t *testing.T) {
	runOnce := func(workers int) string {
		var out bytes.Buffer
		opts := options{scenario: "partition", days: 1, seed: 1, loadWorkers: workers}
		if err := run(opts, &out, io.Discard); err != nil {
			t.Fatalf("run(partition, %d workers): %v", workers, err)
		}
		return out.String()
	}
	first := runOnce(1)
	second := runOnce(4)
	if first != second {
		t.Fatalf("reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", first, second)
	}
	if again := runOnce(4); again != second {
		t.Fatal("repeated run with identical options produced a different report")
	}
	for _, want := range []string{
		"partition drop sweep", "partition delay sweep",
		"healed partition timeline", "degraded responses", "first rule",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
}

// TestPartitionDropCurve asserts the drop-sweep claims on the seed-1 run:
// the attacker leak rate is monotone non-decreasing in gossip drop
// probability with a strict rise across the sweep, and one fetch retry at
// p=0.6 recovers a large share of the failed exchanges.
func TestPartitionDropCurve(t *testing.T) {
	outcomes := partitionRun(t)

	byName := make(map[string]partitionOutcome, len(outcomes))
	for _, o := range outcomes {
		byName[o.arm.name] = o
	}
	leak := func(name string) float64 {
		o, ok := byName[name]
		if !ok {
			t.Fatalf("arm %q missing", name)
		}
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			t.Fatalf("arm %q: no abusive traffic completed", name)
		}
		return rate
	}

	sweep := []string{"clean", "drop p=0.3", "drop p=0.6", "drop p=0.9"}
	for i := 1; i < len(sweep); i++ {
		lo, hi := leak(sweep[i-1]), leak(sweep[i])
		if hi < lo {
			t.Fatalf("leak not monotone in drop probability: %q=%v > %q=%v",
				sweep[i-1], lo, sweep[i], hi)
		}
	}
	if leak(sweep[0]) >= leak(sweep[len(sweep)-1]) {
		t.Fatalf("leak flat across the drop sweep: clean=%v p=0.9=%v",
			leak(sweep[0]), leak(sweep[len(sweep)-1]))
	}

	// Retry value: at the same 0.6 drop rate, one retry must cut both the
	// failed exchanges and the degraded-response count.
	bare, retry := byName["drop p=0.6"], byName["drop p=0.6 retry"]
	if retry.stats.FetchFailures >= bare.stats.FetchFailures {
		t.Fatalf("retry did not reduce fetch failures: %d (retry) vs %d (bare)",
			retry.stats.FetchFailures, bare.stats.FetchFailures)
	}
	if retry.stats.DegradedResponses >= bare.stats.DegradedResponses {
		t.Fatalf("retry did not reduce degraded responses: %d (retry) vs %d (bare)",
			retry.stats.DegradedResponses, bare.stats.DegradedResponses)
	}

	// Delay sweep: staler snapshots can only leak more.
	if d4, d8 := leak("delay 4s"), leak("delay 8s"); d8 < d4 {
		t.Fatalf("leak not monotone in propagation delay: 4s=%v 8s=%v", d4, d8)
	}

	// Injected faults must never tax honest traffic: fail-static keeps
	// serving below-threshold clients through every fault plan.
	for _, o := range outcomes {
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			if done := c.Completed(); c.Admitted != done {
				t.Fatalf("arm %q: honest class %q admitted %d of %d", o.arm.name, c.Name, c.Admitted, done)
			}
		}
	}
}

// TestPartitionHealConvergence asserts the timeline claims: while the
// fleet is split neither half's view crosses the rule threshold — the cut
// window leaks wholesale and stamps degraded responses — and the first
// post-heal exchange merges the halves, lands the rule, and converges the
// leak back to the healthy arm's blocked state.
func TestPartitionHealConvergence(t *testing.T) {
	outcomes := partitionRun(t)
	var healthy, parted *partitionOutcome
	for i := range outcomes {
		switch outcomes[i].arm.name {
		case "healthy":
			healthy = &outcomes[i]
		case "partitioned":
			parted = &outcomes[i]
		}
	}
	if healthy == nil || parted == nil {
		t.Fatal("timeline arms missing")
	}

	if healthy.firstRule < 0 {
		t.Fatal("healthy arm never originated a rule")
	}
	if healthy.firstRule >= partitionCutStart+partitionCutLen {
		t.Fatalf("healthy arm detected only at +%v, after the cut window — threshold too high to separate the arms", healthy.firstRule)
	}
	if parted.firstRule < 0 {
		t.Fatal("partitioned arm never originated a rule — the heal did not converge")
	}
	if parted.firstRule < partitionCutStart+partitionCutLen {
		t.Fatalf("partitioned arm detected at +%v, inside the cut: a split half crossed the threshold", parted.firstRule)
	}

	bucketLeak := func(o *partitionOutcome, i int) float64 {
		if i >= len(o.buckets) || o.buckets[i].abusiveDone == 0 {
			return -1
		}
		b := o.buckets[i]
		return float64(b.abusiveAdmitted) / float64(b.abusiveDone)
	}
	// During the cut the partitioned fleet leaks wholesale while the
	// healthy fleet has already converged to blocking.
	cutBucket := int((partitionCutStart + partitionCutLen) / partitionBucket)
	if got := bucketLeak(parted, cutBucket-1); got != 1.0 {
		t.Fatalf("partitioned leak in final cut bucket = %v, want 1.0", got)
	}
	if got := bucketLeak(healthy, cutBucket-1); got != 0.0 {
		t.Fatalf("healthy leak in final cut bucket = %v, want 0.0", got)
	}
	// Post-heal convergence: the last two buckets must match the healthy
	// arm's fully-blocked state.
	last := len(parted.buckets) - 1
	for _, i := range []int{last - 1, last} {
		if got := bucketLeak(parted, i); got != 0.0 {
			t.Fatalf("partitioned leak in bucket %d = %v after heal, want 0.0", i, got)
		}
	}
	// The cut must be visible in the degradation signal: stamps during the
	// outage, none once staleness clears after the heal.
	var duringCut, tail int
	for i, b := range parted.buckets {
		if i >= int(partitionCutStart/partitionBucket) && i < cutBucket {
			duringCut += b.degraded
		}
		if i >= last-1 {
			tail += b.degraded
		}
	}
	if duringCut == 0 {
		t.Fatal("no degraded responses stamped during the cut window")
	}
	if tail != 0 {
		t.Fatalf("%d degraded responses in the final buckets: staleness did not clear after the heal", tail)
	}
	if healthy.stats.DegradedResponses != 0 {
		t.Fatalf("healthy arm stamped %d degraded responses", healthy.stats.DegradedResponses)
	}
}

// partitionRun replays the seed-1 partition arms once per test binary.
func partitionRun(t *testing.T) []partitionOutcome {
	t.Helper()
	sc := loadgen.LowAndSlowScenario(1, loadsimEpoch)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	opts := options{scenario: "partition", seed: 1, loadWorkers: 2}
	outcomes, err := partitionOutcomes(opts, plan, nil, io.Discard)
	if err != nil {
		t.Fatalf("outcomes: %v", err)
	}
	return outcomes
}
