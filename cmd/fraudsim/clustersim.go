package main

import (
	"fmt"
	"io"
	"time"

	"funabuse/internal/cluster"
	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/obs"
	"funabuse/internal/simclock"
)

// The clustersim scenario replays one distributed low-and-slow plan —
// steady per-fingerprint volume a dumb load balancer spreads across the
// whole fleet — against gate clusters of varying node count, routing
// policy and gossip interval. The headline curve is attacker leak rate
// vs. replication: a surge invisible to every single node is caught once
// sketch state merges, and a shorter gossip interval shortens both the
// detection lag and the window in which a deployed rule only guards its
// origin node.

// clustersimRuleThreshold is the fleet-view detection threshold: well
// above one node's 1/N share of the attacker volume, well below the
// attacker's full in-window rate.
const (
	clustersimRuleThreshold = 80
	clustersimRuleWindow    = 20 * time.Second
)

// clusterArm is one fleet configuration the plan is replayed against.
type clusterArm struct {
	name      string
	nodes     int
	gossip    time.Duration
	replicate bool
}

// clustersimArms sweep the two tentpole axes: node count (1, 4, 8) and
// gossip interval (none, 8 s, 4 s, 2 s). The single-node arm is the
// all-seeing baseline; "per-node" is the same fleet with replication off.
var clustersimArms = []clusterArm{
	{name: "single-node", nodes: 1},
	{name: "per-node n=4", nodes: 4},
	{name: "merged n=4 g=8s", nodes: 4, gossip: 8 * time.Second, replicate: true},
	{name: "merged n=4 g=4s", nodes: 4, gossip: 4 * time.Second, replicate: true},
	{name: "merged n=4 g=2s", nodes: 4, gossip: 2 * time.Second, replicate: true},
	{name: "merged n=8 g=2s", nodes: 8, gossip: 2 * time.Second, replicate: true},
}

// clusterOutcome is one arm's measurements, joined for the report.
type clusterOutcome struct {
	arm    clusterArm
	result *loadgen.Result
	stats  cluster.Stats
}

// runClustersim replays the seeded distributed low-and-slow plan against
// each fleet arm and reports leak rate vs. gossip interval vs. node
// count. Virtual pacing (the default) makes every arm bit-deterministic
// per seed; -loadreal paces the same plan in wall time.
func runClustersim(opts options, stdout, stderr io.Writer) error {
	start := loadsimEpoch
	if opts.loadReal {
		start = time.Now()
	}
	sc := loadgen.LowAndSlowScenario(opts.seed, start)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if opts.telemetry != nil || opts.serve != "" {
		reg = opts.telemetry
		if reg == nil {
			reg = obs.NewRegistry()
		}
		reg.Gauge("fraudsim_seed").Set(float64(opts.seed))
		reg.Gauge("fraudsim_scenario_info",
			obs.Label{Name: "scenario", Value: "clustersim"}).Set(1)
		reg.Help("fraudsim_scenario_info", "Constant 1; the scenario label identifies the run.")
	}
	if opts.serve != "" {
		ring := opts.traces
		if ring == nil {
			ring = obs.NewTraceRing(obs.DefaultTraceCapacity)
		}
		srv, err := serveTelemetry(opts.serve, reg, ring, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	outcomes, err := clustersimOutcomes(opts, plan, reg, stderr)
	if err != nil {
		return err
	}

	fmt.Fprint(stdout, clustersimReport(outcomes).String())

	if opts.loadDirect {
		if err := clustersimDirect(opts, plan, stdout); err != nil {
			return fmt.Errorf("direct section: %w", err)
		}
	}

	if opts.stayUp && opts.serve != "" {
		waitForInterrupt(stderr)
	}
	return nil
}

// clustersimOutcomes replays the plan against every arm in order.
func clustersimOutcomes(opts options, plan *loadgen.Plan, reg *obs.Registry, stderr io.Writer) ([]clusterOutcome, error) {
	outcomes := make([]clusterOutcome, 0, len(clustersimArms))
	for _, arm := range clustersimArms {
		out, err := runClustersimArm(opts, plan, arm, reg, stderr)
		if err != nil {
			return nil, fmt.Errorf("arm %q: %w", arm.name, err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// runClustersimArm boots a fresh fleet for the arm, replays the shared
// plan through its routing front, and tears the fleet down. Multi-node
// arms use the seeded random router — the dumb-LB topology the
// low-and-slow shape exploits — so per-node arms and merged arms see the
// same request spread and differ only in replication.
func runClustersimArm(opts options, plan *loadgen.Plan, arm clusterArm, reg *obs.Registry, stderr io.Writer) (clusterOutcome, error) {
	var manual *simclock.Manual
	ccfg := cluster.Config{
		Nodes:          arm.nodes,
		Gossip:         arm.gossip,
		ReplicateRules: arm.replicate,
		ReplicateState: arm.replicate,
		RuleThreshold:  clustersimRuleThreshold,
		RuleWindow:     clustersimRuleWindow,
		RulePaths:      []string{loadgen.PathHold, loadgen.PathSMS},
	}
	if arm.nodes > 1 {
		ccfg.Router = cluster.NewRandomRouter(opts.seed)
	}
	if !opts.loadReal {
		manual = simclock.NewManual(plan.Scenario.Start)
		ccfg.Clock = manual
	}
	fleet, err := cluster.Start(ccfg)
	if err != nil {
		return clusterOutcome{}, err
	}
	defer fleet.Close()
	fmt.Fprintf(stderr, "fraudsim: clustersim arm %q driving %s (%d arrivals, %d nodes)\n",
		arm.name, fleet.URL, len(plan.Arrivals), arm.nodes)

	runner, err := loadgen.NewRunner(loadgen.RunnerConfig{
		Plan:      plan,
		BaseURL:   fleet.URL,
		Workers:   opts.loadWorkers,
		Virtual:   manual,
		Telemetry: reg,
		Arm:       arm.name,
	})
	if err != nil {
		return clusterOutcome{}, err
	}
	res, err := runner.Run()
	if err != nil {
		return clusterOutcome{}, err
	}
	return clusterOutcome{arm: arm, result: res, stats: fleet.Cluster.Stats()}, nil
}

// clustersimReport renders the per-arm comparison. Every column replays
// the same seeded plan, so differences are the fleet topology's.
func clustersimReport(outcomes []clusterOutcome) *metrics.Table {
	headers := make([]string, 0, len(outcomes)+1)
	headers = append(headers, "Metric")
	for _, o := range outcomes {
		headers = append(headers, o.arm.name)
	}
	t := metrics.NewTable("clustersim report", headers...)

	row := func(label string, cell func(clusterOutcome) string) {
		cells := make([]string, 0, len(outcomes)+1)
		cells = append(cells, label)
		for _, o := range outcomes {
			cells = append(cells, cell(o))
		}
		t.AddRow(cells...)
	}

	row("plan hash", func(o clusterOutcome) string {
		return fmt.Sprintf("%016x", o.result.PlanHash)
	})
	row("nodes", func(o clusterOutcome) string {
		return metrics.FormatInt(int64(o.stats.Nodes))
	})
	row("gossip interval", func(o clusterOutcome) string {
		if o.arm.gossip <= 0 {
			return "off"
		}
		return o.arm.gossip.String()
	})
	row("requests completed", func(o clusterOutcome) string {
		var done uint64
		for _, c := range o.result.Classes {
			done += c.Completed()
		}
		return metrics.FormatInt(int64(done))
	})
	row("gossip rounds", func(o clusterOutcome) string {
		return metrics.FormatInt(int64(o.stats.GossipRounds))
	})
	row("rules originated", func(o clusterOutcome) string {
		return metrics.FormatInt(int64(o.stats.RulesOriginated))
	})
	row("rules replicated", func(o clusterOutcome) string {
		return metrics.FormatInt(int64(o.stats.RulesReplicated))
	})
	row("mean rule propagation", func(o clusterOutcome) string {
		if o.stats.RulesReplicated == 0 {
			return "n/a"
		}
		return o.stats.MeanPropagation.Round(time.Millisecond).String()
	})
	row("attacker leak rate", func(o clusterOutcome) string {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", rate)
	})
	row("honest admit rate", func(o clusterOutcome) string {
		var admitted, done uint64
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			admitted += c.Admitted
			done += c.Completed()
		}
		if done == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(admitted)/float64(done))
	})
	return t
}
