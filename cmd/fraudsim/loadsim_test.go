package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/obs"
)

// TestLoadsimDeterministic runs the virtual-paced loadsim twice with one
// seed and different worker counts and requires byte-identical reports —
// the whole-command form of the loadgen workers-1-vs-N golden.
func TestLoadsimDeterministic(t *testing.T) {
	runOnce := func(workers int) string {
		var out bytes.Buffer
		opts := options{scenario: "loadsim", days: 1, seed: 7, loadWorkers: workers}
		if err := run(opts, &out, io.Discard); err != nil {
			t.Fatalf("run(loadsim, %d workers): %v", workers, err)
		}
		return out.String()
	}
	first := runOnce(1)
	second := runOnce(4)
	if first != second {
		t.Fatalf("reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", first, second)
	}
	for _, want := range []string{"plan hash", "rules deployed", "attacker rotations", "attacker leak rate"} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
	if strings.Contains(first, "mean intended-start latency") {
		t.Fatal("virtual run reported the wall-only latency row")
	}
}

// TestLoadsimDirectSection renders the -loaddirect throughput comparison
// on the loadsim plan and checks both batch columns replayed the full
// plan. Timing cells are wall-clock, so only structure is asserted.
func TestLoadsimDirectSection(t *testing.T) {
	plan, err := loadgen.BuildPlan(loadsimScenario(7, loadsimEpoch))
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	var out bytes.Buffer
	if err := loadsimDirect(options{seed: 7, loadBatch: 16}, plan, &out); err != nil {
		t.Fatalf("loadsimDirect: %v", err)
	}
	report := out.String()
	for _, want := range []string{
		"loadsim direct decision throughput", "batch=1", "batch=16",
		metrics.FormatInt(int64(len(plan.Arrivals))), "batch speedup",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("direct section missing %q:\n%s", want, report)
		}
	}
}

// TestLoadsimTelemetry scrapes a finished loadsim run in-process and
// requires the arm-labelled loadgen families plus the run-identity gauges
// on the shared registry.
func TestLoadsimTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	opts := options{scenario: "loadsim", days: 1, seed: 7, loadWorkers: 2, telemetry: reg}
	if err := run(opts, io.Discard, io.Discard); err != nil {
		t.Fatalf("run(loadsim): %v", err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	samples, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}

	arms := map[string]float64{}
	var seed, scenarioInfo float64
	var scenarioLabel string
	for _, s := range samples {
		switch s.Name {
		case "loadgen_requests_total":
			for _, l := range s.Labels {
				if l.Name == "arm" {
					arms[l.Value] += s.Value
				}
			}
		case "fraudsim_seed":
			seed = s.Value
		case "fraudsim_scenario_info":
			scenarioInfo = s.Value
			for _, l := range s.Labels {
				if l.Name == "scenario" {
					scenarioLabel = l.Value
				}
			}
		}
	}
	if seed != 7 {
		t.Fatalf("fraudsim_seed = %v, want 7", seed)
	}
	if scenarioInfo != 1 || scenarioLabel != "loadsim" {
		t.Fatalf("fraudsim_scenario_info = %v with scenario %q, want 1 with loadsim", scenarioInfo, scenarioLabel)
	}
	if len(arms) != 2 {
		t.Fatalf("arm labels = %v, want both defence arms", arms)
	}
	if arms["blocklist"] <= 0 || arms["blocklist+path-limit"] <= 0 {
		t.Fatalf("arm totals = %v, want both positive", arms)
	}
	if arms["blocklist"] != arms["blocklist+path-limit"] {
		t.Fatalf("arms replayed different request totals: %v", arms)
	}
}
