package main

import (
	"fmt"
	"io"
	"time"

	"funabuse/internal/account"
	"funabuse/internal/httpgate"
	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/mitigate"
	"funabuse/internal/obs"
	"funabuse/internal/simclock"
)

// The economics scenario (experiment E18) replays one budget-constrained
// seat-spinning plan — attackers paying per account registration, per
// request and per burned account, enumerating their own booking-reference
// range — against three defence arms: no account tiering, loyalty-tiered
// gating (bulk seat-map probing restricted to members, per-tier rate
// multipliers), and tiering plus live decoy inventory seeded into the
// attacker's enumeration space. The headline contrast is the attacker's
// ROI over time: tiering cuts revenue, and honeypots push the operation
// under water — admitted decoy bookings earn nothing while every hit
// deploys an instant blocking rule that burns the account behind it.

// Economics defence tuning: guests get a per-account rate allowance low
// enough to blunt a burst while the member/silver/gold multipliers keep
// established customers unthrottled, and roughly a third of the
// attacker's reference space is decoy inventory.
const (
	econGuestLimit    = 40
	econLimitWindow   = time.Minute
	econDecoyFraction = 0.3
	econBucket        = 15 * time.Second
)

// econArm is one defence configuration the plan is replayed against.
type econArm struct {
	name    string
	tiering bool
	decoys  bool
}

// econArms are the three rungs of the E18 comparison.
var econArms = []econArm{
	{name: "no tiering"},
	{name: "tiering", tiering: true},
	{name: "tiering + honeypots", tiering: true, decoys: true},
}

// econOutcome is one arm's measurements, joined for the report.
type econOutcome struct {
	arm    econArm
	result *loadgen.Result
	rules  []loadgen.Rule
	decoys *mitigate.DecoySet
	ledger *loadgen.ROILedger
}

// econAttackerClass locates the scenario's priced class.
func econAttackerClass(sc loadgen.Scenario) int {
	for ci, c := range sc.Classes {
		if c.Econ != nil {
			return ci
		}
	}
	return -1
}

// runEconomics replays the seeded attacker-economics plan against each
// defence arm on a live httpgate-backed server and reports the ROI
// contrast side by side. Virtual pacing (the default) makes the whole run
// bit-deterministic per seed; -loadreal paces the same plan in wall time.
func runEconomics(opts options, stdout, stderr io.Writer) error {
	start := loadsimEpoch
	if opts.loadReal {
		start = time.Now()
	}
	sc := loadgen.EconomicsScenario(opts.seed, start)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if opts.telemetry != nil || opts.serve != "" {
		reg = opts.telemetry
		if reg == nil {
			reg = obs.NewRegistry()
		}
		reg.Gauge("fraudsim_seed").Set(float64(opts.seed))
		reg.Gauge("fraudsim_scenario_info",
			obs.Label{Name: "scenario", Value: "economics"}).Set(1)
		reg.Help("fraudsim_scenario_info", "Constant 1; the scenario label identifies the run.")
	}
	if opts.serve != "" {
		ring := opts.traces
		if ring == nil {
			ring = obs.NewTraceRing(obs.DefaultTraceCapacity)
		}
		srv, err := serveTelemetry(opts.serve, reg, ring, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	outcomes, err := econOutcomes(opts, plan, reg, stderr)
	if err != nil {
		return err
	}

	fmt.Fprint(stdout, econReport(plan, outcomes).String())

	if opts.stayUp && opts.serve != "" {
		waitForInterrupt(stderr)
	}
	return nil
}

// econOutcomes replays the plan against every arm in order.
func econOutcomes(opts options, plan *loadgen.Plan, reg *obs.Registry, stderr io.Writer) ([]econOutcome, error) {
	outcomes := make([]econOutcome, 0, len(econArms))
	for _, arm := range econArms {
		out, err := runEconArm(opts, plan, arm, reg, stderr)
		if err != nil {
			return nil, fmt.Errorf("arm %q: %w", arm.name, err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// runEconArm boots a fresh defended target for the arm, replays the
// shared plan against it, and folds the run into the arm's ROI ledger.
// Tiered arms pre-register the honest fleet as long-standing gold members
// — established customers whose history the attacker cannot buy — while
// attacker accounts are created on first sight as guests.
func runEconArm(opts options, plan *loadgen.Plan, arm econArm, reg *obs.Registry, stderr io.Writer) (econOutcome, error) {
	sc := plan.Scenario
	attacker := econAttackerClass(sc)
	if attacker < 0 {
		return econOutcome{}, fmt.Errorf("scenario has no priced class")
	}

	var manual *simclock.Manual
	tcfg := loadgen.TargetConfig{}
	if !opts.loadReal {
		manual = simclock.NewManual(sc.Start)
		tcfg.Clock = manual
	}
	if arm.tiering {
		store := account.NewStore(account.Config{})
		for _, c := range sc.Classes {
			if c.Kind.Abusive() {
				continue
			}
			// Honest sessions are stable per client, named by the fleet.
			for i := 0; i < c.Clients; i++ {
				store.Register(fmt.Sprintf("%s-%d", c.Name, i),
					sc.Start.Add(-365*24*time.Hour), 25, sc.Start)
			}
		}
		tcfg.Accounts = store
		tcfg.AccountRestricted = map[string]int{loadgen.PathSeatMap: int(account.Member)}
		tcfg.AccountBaseLimit = econGuestLimit
		tcfg.AccountWindow = econLimitWindow
		tcfg.AccountBookingPaths = []string{loadgen.PathHold}
	}
	var decoys *mitigate.DecoySet
	if arm.decoys {
		decoys = mitigate.NewDecoySet(sc.Seed, sc.ClassRefs(attacker), econDecoyFraction)
		tcfg.Decoys = decoys
	}
	target, err := loadgen.StartTarget(tcfg)
	if err != nil {
		return econOutcome{}, err
	}
	defer target.Close()
	fmt.Fprintf(stderr, "fraudsim: economics arm %q driving %s (%d arrivals)\n",
		arm.name, target.URL, len(plan.Arrivals))

	ledger := loadgen.NewROILedger(loadgen.ROILedgerConfig{
		Econ:   *sc.Classes[attacker].Econ,
		Class:  attacker,
		Start:  sc.Start,
		Bucket: econBucket,
		Decoys: decoys,
	})
	runner, err := loadgen.NewRunner(loadgen.RunnerConfig{
		Plan:      plan,
		BaseURL:   target.URL,
		Workers:   opts.loadWorkers,
		Virtual:   manual,
		Telemetry: reg,
		Arm:       arm.name,
		Observe:   ledger.Observe,
	})
	if err != nil {
		return econOutcome{}, err
	}
	res, err := runner.Run()
	if err != nil {
		return econOutcome{}, err
	}
	ledger.FoldResult(res)
	out := econOutcome{arm: arm, result: res, ledger: ledger, decoys: decoys}
	if target.Deployer != nil {
		out.rules = target.Deployer.Rules()
	}
	return out, nil
}

// econReport renders the per-arm comparison. Every column replays the
// same seeded plan with the same attacker cost sheet, so every
// difference is the defence configuration's.
func econReport(plan *loadgen.Plan, outcomes []econOutcome) *metrics.Table {
	headers := make([]string, 0, len(outcomes)+1)
	headers = append(headers, "Metric")
	for _, o := range outcomes {
		headers = append(headers, o.arm.name)
	}
	t := metrics.NewTable("attacker economics report", headers...)

	row := func(label string, cell func(econOutcome) string) {
		cells := make([]string, 0, len(outcomes)+1)
		cells = append(cells, label)
		for _, o := range outcomes {
			cells = append(cells, cell(o))
		}
		t.AddRow(cells...)
	}
	attacker := econAttackerClass(plan.Scenario)
	attackerOf := func(o econOutcome) loadgen.ClassResult {
		return o.result.Classes[attacker]
	}

	row("plan hash", func(o econOutcome) string {
		return fmt.Sprintf("%016x", o.result.PlanHash)
	})
	row("requests completed", func(o econOutcome) string {
		var done uint64
		for _, c := range o.result.Classes {
			done += c.Completed()
		}
		return metrics.FormatInt(int64(done))
	})
	row("honest admit rate", func(o econOutcome) string {
		var admitted, done uint64
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			admitted += c.Admitted
			done += c.Completed()
		}
		if done == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(admitted)/float64(done))
	})
	row("attacker leak rate", func(o econOutcome) string {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", rate)
	})
	row("rules deployed", func(o econOutcome) string {
		return metrics.FormatInt(int64(len(o.rules)))
	})
	row("tier denials", func(o econOutcome) string {
		return metrics.FormatInt(int64(attackerOf(o).Denied[httpgate.ReasonAccountTier]))
	})
	row("account rate-limit denials", func(o econOutcome) string {
		return metrics.FormatInt(int64(attackerOf(o).Denied[httpgate.ReasonAccountLimit]))
	})
	row("decoy hits", func(o econOutcome) string {
		if o.decoys == nil {
			return "n/a"
		}
		return metrics.FormatInt(int64(o.decoys.HitCount()))
	})
	row("accounts registered", func(o econOutcome) string {
		return metrics.FormatInt(int64(attackerOf(o).Registrations))
	})
	row("accounts burned", func(o econOutcome) string {
		return metrics.FormatInt(int64(attackerOf(o).Burned))
	})
	row("budget-stopped arrivals", func(o econOutcome) string {
		return metrics.FormatInt(int64(attackerOf(o).BudgetSkipped))
	})
	row("attacker spend", func(o econOutcome) string {
		spend, _, _ := o.ledger.Totals()
		return fmt.Sprintf("$%.2f", spend)
	})
	row("believed revenue", func(o econOutcome) string {
		_, believed, _ := o.ledger.Totals()
		return fmt.Sprintf("$%.2f", believed)
	})
	row("actual revenue", func(o econOutcome) string {
		_, _, actual := o.ledger.Totals()
		return fmt.Sprintf("$%.2f", actual)
	})
	row("attacker profit", func(o econOutcome) string {
		return fmt.Sprintf("$%.2f", o.ledger.ProfitUSD())
	})
	row("attacker ROI", func(o econOutcome) string {
		roi, ok := o.ledger.ROI()
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", roi)
	})
	for _, offset := range []time.Duration{econBucket, 2 * econBucket, 3 * econBucket, 4 * econBucket} {
		at := plan.Scenario.Start.Add(offset)
		row(fmt.Sprintf("cumulative profit @ %s", offset), func(o econOutcome) string {
			return fmt.Sprintf("$%.2f", o.ledger.At(at).ProfitUSD())
		})
	}
	return t
}
