package main

import (
	"fmt"
	"io"
	"time"

	"funabuse/internal/entitygraph"
	"funabuse/internal/httpgate"
	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/obs"
	"funabuse/internal/simclock"
)

// The syndicate scenario (experiment E17) replays one coordinated-ring
// plan — a fleet sharing a pool of spoofed fingerprints, proxy exits and
// booking references, every identity pacing itself under the per-identity
// rule threshold — against two defence arms: volume rules alone, then the
// same rules backed by the incremental entity-linkage graph. The headline
// contrast is the leak rate: per-identity volume defences concede the
// attack essentially whole, while the graph collapses the ring's
// co-occurring identities into one flagged component and the gate's
// entity layer shuts all of it down at once.

// Syndicate defence tuning: the rule threshold sits well above any pooled
// fingerprint's in-window volume (the ring's whole point), and the graph
// flags components that braid at least three identity types across five
// or more nodes with a few seconds of accrued weak signal.
const (
	syndicateRuleThreshold = 80
	syndicateRuleWindow    = 20 * time.Second
	syndicateEntityWeak    = 0.25
)

// syndicateGraphConfig is the entity-graph tuning of the graph arm.
func syndicateGraphConfig() entitygraph.Config {
	return entitygraph.Config{MinSize: 6, MinTypes: 3, FlagScore: 4}
}

// syndicateArm is one defence configuration the plan is replayed against.
type syndicateArm struct {
	name  string
	graph bool
}

// syndicateArms are the two ends of the E17 comparison.
var syndicateArms = []syndicateArm{
	{name: "volume rules"},
	{name: "volume + entity graph", graph: true},
}

// syndicateOutcome is one arm's measurements, joined for the report.
type syndicateOutcome struct {
	arm    syndicateArm
	result *loadgen.Result
	rules  []loadgen.Rule
	stats  entitygraph.Stats
}

// runSyndicate replays the seeded coordinated-ring plan against each
// defence arm on a live httpgate-backed server and reports the contrast
// side by side. Virtual pacing (the default) makes the whole run
// bit-deterministic per seed; -loadreal paces the same plan in wall time.
func runSyndicate(opts options, stdout, stderr io.Writer) error {
	start := loadsimEpoch
	if opts.loadReal {
		start = time.Now()
	}
	sc := loadgen.SyndicateScenario(opts.seed, start)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if opts.telemetry != nil || opts.serve != "" {
		reg = opts.telemetry
		if reg == nil {
			reg = obs.NewRegistry()
		}
		reg.Gauge("fraudsim_seed").Set(float64(opts.seed))
		reg.Gauge("fraudsim_scenario_info",
			obs.Label{Name: "scenario", Value: "syndicate"}).Set(1)
		reg.Help("fraudsim_scenario_info", "Constant 1; the scenario label identifies the run.")
	}
	if opts.serve != "" {
		ring := opts.traces
		if ring == nil {
			ring = obs.NewTraceRing(obs.DefaultTraceCapacity)
		}
		srv, err := serveTelemetry(opts.serve, reg, ring, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	outcomes, err := syndicateOutcomes(opts, plan, reg, stderr)
	if err != nil {
		return err
	}

	fmt.Fprint(stdout, syndicateReport(outcomes).String())

	if opts.stayUp && opts.serve != "" {
		waitForInterrupt(stderr)
	}
	return nil
}

// syndicateOutcomes replays the plan against every arm in order.
func syndicateOutcomes(opts options, plan *loadgen.Plan, reg *obs.Registry, stderr io.Writer) ([]syndicateOutcome, error) {
	outcomes := make([]syndicateOutcome, 0, len(syndicateArms))
	for _, arm := range syndicateArms {
		out, err := runSyndicateArm(opts, plan, arm, reg, stderr)
		if err != nil {
			return nil, fmt.Errorf("arm %q: %w", arm.name, err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// runSyndicateArm boots a fresh defended target for the arm, replays the
// shared plan against it, and tears the target down. Both arms share the
// volume-rule defender; the graph arm adds the entity graph, its request
// feeder and the gate's entity layer on top.
func runSyndicateArm(opts options, plan *loadgen.Plan, arm syndicateArm, reg *obs.Registry, stderr io.Writer) (syndicateOutcome, error) {
	var manual *simclock.Manual
	tcfg := loadgen.TargetConfig{
		RuleThreshold: syndicateRuleThreshold,
		RuleWindow:    syndicateRuleWindow,
		RulePaths:     []string{loadgen.PathHold, loadgen.PathSMS},
	}
	if !opts.loadReal {
		manual = simclock.NewManual(plan.Scenario.Start)
		tcfg.Clock = manual
	}
	var graph *entitygraph.Graph
	if arm.graph {
		graph = entitygraph.New(syndicateGraphConfig())
		tcfg.EntityGraph = graph
		tcfg.EntityPaths = []string{loadgen.PathHold, loadgen.PathSMS}
		tcfg.EntityWeak = syndicateEntityWeak
	}
	target, err := loadgen.StartTarget(tcfg)
	if err != nil {
		return syndicateOutcome{}, err
	}
	defer target.Close()
	fmt.Fprintf(stderr, "fraudsim: syndicate arm %q driving %s (%d arrivals)\n",
		arm.name, target.URL, len(plan.Arrivals))

	runner, err := loadgen.NewRunner(loadgen.RunnerConfig{
		Plan:      plan,
		BaseURL:   target.URL,
		Workers:   opts.loadWorkers,
		Virtual:   manual,
		Telemetry: reg,
		Arm:       arm.name,
	})
	if err != nil {
		return syndicateOutcome{}, err
	}
	res, err := runner.Run()
	if err != nil {
		return syndicateOutcome{}, err
	}
	out := syndicateOutcome{arm: arm, result: res, rules: target.Deployer.Rules()}
	if graph != nil {
		out.stats = graph.Stats()
	}
	return out, nil
}

// syndicateReport renders the per-arm comparison. Every column replays
// the same seeded plan, so differences are the defence configuration's.
func syndicateReport(outcomes []syndicateOutcome) *metrics.Table {
	headers := make([]string, 0, len(outcomes)+1)
	headers = append(headers, "Metric")
	for _, o := range outcomes {
		headers = append(headers, o.arm.name)
	}
	t := metrics.NewTable("syndicate report", headers...)

	row := func(label string, cell func(syndicateOutcome) string) {
		cells := make([]string, 0, len(outcomes)+1)
		cells = append(cells, label)
		for _, o := range outcomes {
			cells = append(cells, cell(o))
		}
		t.AddRow(cells...)
	}

	row("plan hash", func(o syndicateOutcome) string {
		return fmt.Sprintf("%016x", o.result.PlanHash)
	})
	row("requests completed", func(o syndicateOutcome) string {
		var done uint64
		for _, c := range o.result.Classes {
			done += c.Completed()
		}
		return metrics.FormatInt(int64(done))
	})
	row("volume rules deployed", func(o syndicateOutcome) string {
		return metrics.FormatInt(int64(len(o.rules)))
	})
	row("entity denials", func(o syndicateOutcome) string {
		var n uint64
		for _, c := range o.result.Classes {
			n += c.Denied[httpgate.ReasonEntity]
		}
		return metrics.FormatInt(int64(n))
	})
	row("graph nodes", func(o syndicateOutcome) string {
		if !o.arm.graph {
			return "n/a"
		}
		return metrics.FormatInt(int64(o.stats.Nodes))
	})
	row("graph components", func(o syndicateOutcome) string {
		if !o.arm.graph {
			return "n/a"
		}
		return metrics.FormatInt(int64(o.stats.Components))
	})
	row("flagged components", func(o syndicateOutcome) string {
		if !o.arm.graph {
			return "n/a"
		}
		return metrics.FormatInt(int64(o.stats.FlaggedComponents))
	})
	row("syndicate leak rate", func(o syndicateOutcome) string {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", rate)
	})
	row("honest admit rate", func(o syndicateOutcome) string {
		var admitted, done uint64
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			admitted += c.Admitted
			done += c.Completed()
		}
		if done == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(admitted)/float64(done))
	})
	return t
}
