package main

import (
	"fmt"
	"io"
	"time"

	"funabuse/internal/cluster"
	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/simclock"
)

// Direct mode (-loaddirect) appends a decision-throughput section to the
// loadsim and clustersim reports: the same seeded plan replayed in-process
// against a fresh target, once through per-request Decide and once through
// DecideBatch at -loadbatch, so the E14/E15 tables show what batch
// amortization buys with sockets and HTTP parsing out of the frame. The
// section is off by default because its timing columns are wall-clock —
// the deterministic report above it stays byte-identical per seed.

// directBuilder constructs a fresh in-process target on the run's clock.
type directBuilder func(clock simclock.Clock) loadgen.DirectTarget

// directSection replays plan at batch=1 and batch=batch against
// independently built targets and renders the comparison.
func directSection(stdout io.Writer, title string, plan *loadgen.Plan, batch int, build directBuilder) error {
	if batch < 2 {
		batch = 64
	}
	run := func(b int) (*loadgen.DirectResult, error) {
		clock := simclock.NewManual(plan.Scenario.Start)
		return loadgen.RunDirect(loadgen.DirectConfig{
			Plan:    plan,
			Target:  build(clock),
			Batch:   b,
			Virtual: clock,
		})
	}
	seq, err := run(1)
	if err != nil {
		return err
	}
	bat, err := run(batch)
	if err != nil {
		return err
	}

	t := metrics.NewTable(title, "Metric", "batch=1", fmt.Sprintf("batch=%d", batch))
	cell := func(label string, f func(*loadgen.DirectResult) string) {
		t.AddRow(label, f(seq), f(bat))
	}
	cell("decisions", func(r *loadgen.DirectResult) string {
		return metrics.FormatInt(int64(r.Requests))
	})
	cell("admitted", func(r *loadgen.DirectResult) string {
		return metrics.FormatInt(int64(r.Admitted))
	})
	cell("denied", func(r *loadgen.DirectResult) string {
		return metrics.FormatInt(int64(r.Denied))
	})
	cell("elapsed", func(r *loadgen.DirectResult) string {
		return r.Elapsed.Round(time.Microsecond).String()
	})
	cell("throughput (dec/s)", func(r *loadgen.DirectResult) string {
		return metrics.FormatInt(int64(r.Throughput()))
	})
	speedup := "n/a"
	if seq.Throughput() > 0 {
		speedup = fmt.Sprintf("%.2fx", bat.Throughput()/seq.Throughput())
	}
	t.AddRow("batch speedup", "1.00x", speedup)
	fmt.Fprint(stdout, t.String())
	return nil
}

// loadsimDirect measures the single-gate decision path on the loadsim
// plan, configured like the blocklist+path-limit arm (rule-deploying
// defender included) — the full instrumented pipeline, minus the socket.
func loadsimDirect(opts options, plan *loadgen.Plan, stdout io.Writer) error {
	build := func(clock simclock.Clock) loadgen.DirectTarget {
		gate, _, _ := loadgen.NewTargetGate(loadgen.TargetConfig{
			Clock:          clock,
			RuleThreshold:  40,
			RuleWindow:     30 * time.Second,
			RulePaths:      []string{loadsimPathHold, loadsimPathSMS},
			PathLimit:      300,
			PathWindow:     time.Minute,
			ResourceLimit:  6,
			ResourceWindow: time.Hour,
		})
		return gate
	}
	return directSection(stdout, "loadsim direct decision throughput", plan, opts.loadBatch, build)
}

// clustersimDirect measures the routed-fleet decision path on the
// low-and-slow plan against the merged n=4 g=2s arm: the batch scatters
// across four nodes per router verdict and gathers per-node DecideBatch
// results, so the speedup column reflects the fleet front, not one gate.
func clustersimDirect(opts options, plan *loadgen.Plan, stdout io.Writer) error {
	build := func(clock simclock.Clock) loadgen.DirectTarget {
		return cluster.New(cluster.Config{
			Nodes:          4,
			Clock:          clock,
			Gossip:         2 * time.Second,
			ReplicateRules: true,
			ReplicateState: true,
			RuleThreshold:  clustersimRuleThreshold,
			RuleWindow:     clustersimRuleWindow,
			RulePaths:      []string{loadgen.PathHold, loadgen.PathSMS},
			Router:         cluster.NewRandomRouter(opts.seed),
		})
	}
	return directSection(stdout, "clustersim direct decision throughput", plan, opts.loadBatch, build)
}
