// Command fraudsim runs ad-hoc functional-abuse scenarios against the
// defended application and prints an operational report: attack volume,
// defence actions, inventory damage and SMS billing.
//
//	fraudsim -scenario seatspin -days 7 -defend
//	fraudsim -scenario smspump  -days 7
//	fraudsim -scenario manual   -days 5 -defend
//	fraudsim -scenario mixed    -days 3 -defend -honeypot
//
// All scenarios are deterministic per -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"funabuse/internal/attack"
	"funabuse/internal/booking"
	"funabuse/internal/core"
	"funabuse/internal/fingerprint"
	"funabuse/internal/metrics"
	"funabuse/internal/proxy"
	"funabuse/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "seatspin", "scenario: seatspin, smspump, manual, mixed")
	days := flag.Int("days", 7, "attack duration in simulated days")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	defend := flag.Bool("defend", false, "run the adaptive defender")
	honeypot := flag.Bool("honeypot", false, "redirect flagged clients to decoy inventory (implies -defend)")
	flag.Parse()

	if err := run(*scenario, *days, *seed, *defend, *honeypot); err != nil {
		fmt.Fprintln(os.Stderr, "fraudsim:", err)
		os.Exit(1)
	}
}

func run(scenario string, days int, seed uint64, defend, honeypot bool) error {
	if days < 1 {
		days = 1
	}
	if honeypot {
		defend = true
	}
	horizon := time.Duration(days) * 24 * time.Hour
	warmup := 2 * 24 * time.Hour

	envCfg := core.DefaultEnvConfig(seed)
	envCfg.Defence = core.DefenceConfig{
		Blocklists: defend,
		Honeypot:   honeypot,
	}
	if scenario == "smspump" || scenario == "mixed" {
		envCfg.Defence.SMSPathLimit = 700
		envCfg.Defence.SMSPathWindow = 24 * time.Hour
	}
	envCfg.TargetDep = core.SimStart.Add(warmup + horizon + 72*time.Hour)
	env := core.NewEnv(envCfg)

	flights := append(env.FleetIDs(envCfg), envCfg.TargetID)
	wl := workload.DefaultConfig(flights, core.SimStart.Add(warmup+horizon))
	wl.HoldsPerHour = 60
	pop := workload.NewPopulation(wl, env.App, env.App, env.App, env.Sched, env.RNG.Derive("pop"), env.Registry)
	pop.Start()

	// Warm-up: learn the baseline before the attack.
	if err := env.Run(warmup); err != nil {
		return err
	}

	var defender *core.Defender
	if defend {
		dcfg := core.DefaultDefenderConfig()
		dcfg.RedirectToHoneypot = honeypot
		baseline := env.Bookings.JournalBetween(core.SimStart, core.SimStart.Add(warmup))
		defender = core.NewDefender(dcfg, env.App, env.Sched, baseline)
		defender.Start()
	}

	var spinner *attack.SeatSpinner
	var manual *attack.ManualSpinner
	var pumper *attack.SMSPumper
	until := core.SimStart.Add(warmup + horizon)

	if scenario == "seatspin" || scenario == "mixed" {
		rot := fingerprint.NewRotator(env.RNG.Derive("rot"),
			fingerprint.NewGenerator(env.RNG.Derive("fpgen")), fingerprint.WithSpoofing())
		spinner = attack.NewSeatSpinner(attack.SeatSpinnerConfig{
			ID:             "spin-1",
			Flight:         envCfg.TargetID,
			TargetNiP:      6,
			ReholdInterval: envCfg.Booking.HoldTTL,
			Departure:      envCfg.TargetDep,
			Identity:       attack.IdentityStructured,
			Parallel:       10,
		}, env.App, env.Sched, env.RNG.Derive("spinner"), rot,
			env.Proxies.NewSession("SG", proxy.RotatePerRequest))
		spinner.Start()
	}
	if scenario == "smspump" || scenario == "mixed" {
		rot := fingerprint.NewRotator(env.RNG.Derive("prot"),
			fingerprint.NewGenerator(env.RNG.Derive("pfp")), fingerprint.WithSpoofing())
		pumper = attack.NewSMSPumper(attack.SMSPumperConfig{
			ID:           "pump-1",
			Flight:       envCfg.TargetID,
			Tickets:      4,
			SendInterval: 3 * time.Minute,
			Until:        until,
		}, env.App, env.App, env.Sched, env.RNG.Derive("pumper"), env.Proxies, rot, env.Registry)
		pumper.Start()
	}
	if scenario == "manual" {
		manual = attack.NewManualSpinner(attack.ManualSpinnerConfig{
			ID:        "manc-1",
			Flight:    envCfg.TargetID,
			PoolSize:  6,
			PartySize: 3,
			MeanGap:   10 * time.Minute,
			TypoRate:  0.1,
			Until:     until,
		}, env.App, env.Sched, env.RNG.Derive("manual"),
			env.Proxies.NewSession("TH", proxy.RotatePerRequest))
		manual.Start()
	}
	switch scenario {
	case "seatspin", "smspump", "manual", "mixed":
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	if err := env.Run(warmup + horizon); err != nil {
		return err
	}

	report(env, envCfg, pop, defender, spinner, manual, pumper)
	return nil
}

func report(
	env *core.Env,
	envCfg core.EnvConfig,
	pop *workload.Population,
	defender *core.Defender,
	spinner *attack.SeatSpinner,
	manual *attack.ManualSpinner,
	pumper *attack.SMSPumper,
) {
	t := metrics.NewTable("fraudsim report", "Metric", "Value")
	stats := env.App.Stats()
	t.AddRow("requests processed", metrics.FormatInt(int64(stats.Requests)))
	t.AddRow("requests blocked", metrics.FormatInt(int64(stats.Blocked)))
	t.AddRow("requests rate-limited", metrics.FormatInt(int64(stats.RateLimited)))
	t.AddRow("legitimate holds", metrics.FormatInt(int64(pop.Holds())))
	t.AddRow("legitimate friction", metrics.FormatInt(int64(pop.Friction())))

	if spinner != nil {
		s := spinner.Stats()
		t.AddRow("attacker holds", metrics.FormatInt(int64(s.Holds)))
		t.AddRow("attacker rotations", metrics.FormatInt(int64(len(s.Rotations))))
		if len(s.Rotations) > 0 {
			t.AddRow("mean rotation interval", s.MeanRotationInterval().Round(time.Minute).String())
		}
		var attackRecords []booking.Record
		for _, r := range env.Bookings.Journal() {
			if strings.HasPrefix(r.ActorID, "spin-1") {
				attackRecords = append(attackRecords, r)
			}
		}
		seatHours := booking.SeatHours(attackRecords, envCfg.TargetID, envCfg.Booking.HoldTTL)
		t.AddRow("seat-hours removed from sale", fmt.Sprintf("%.0f", seatHours))
	}
	if manual != nil {
		t.AddRow("manual attacker holds", metrics.FormatInt(int64(manual.Holds())))
		t.AddRow("manual attacker rejects", metrics.FormatInt(int64(manual.Rejects())))
	}
	if pumper != nil {
		t.AddRow("pump messages delivered", metrics.FormatInt(int64(pumper.Sent())))
		t.AddRow("owner SMS bill (pump)", fmt.Sprintf("$%.2f", env.Gateway.CostFor("pump-1")))
		t.AddRow("attacker SMS revenue", fmt.Sprintf("$%.2f", env.Gateway.RevenueFor("pump-1")))
	}
	if defender != nil {
		t.AddRow("defender rules installed", metrics.FormatInt(int64(defender.RulesAdded())))
		t.AddRow("honeypot redirects", metrics.FormatInt(int64(defender.Redirects())))
		if at, ok := defender.CapApplied(); ok {
			t.AddRow("NiP cap applied at", at.Format(time.RFC3339))
		}
	}
	if hp := env.App.Honeypot(); hp != nil {
		t.AddRow("decoy holds absorbed", metrics.FormatInt(int64(hp.DecoyHolds())))
	}
	fmt.Print(t.String())
}
