// Command fraudsim runs ad-hoc functional-abuse scenarios against the
// defended application and prints an operational report: attack volume,
// defence actions, inventory damage and SMS billing.
//
//	fraudsim -scenario seatspin -days 7 -defend
//	fraudsim -scenario smspump  -days 7
//	fraudsim -scenario manual   -days 5 -defend
//	fraudsim -scenario mixed    -days 3 -defend -honeypot
//	fraudsim -scenario mixed    -days 3 -defend -serve :9090
//	fraudsim -scenario loadsim  -loadworkers 8
//	fraudsim -scenario clustersim
//	fraudsim -scenario partition
//	fraudsim -scenario syndicate
//	fraudsim -scenario economics
//
// The loadsim scenario is different in kind: instead of the in-process
// simulation it boots a real httpgate-backed HTTP server and replays a
// seeded mixed-traffic plan against it over sockets, with adaptive
// attacker clients that rotate fingerprints when blocking rules land.
// It compares defence arms side by side; see internal/loadgen.
//
// The clustersim scenario scales that to a fleet: a distributed
// low-and-slow attack replayed against gate clusters of varying node
// count and gossip interval, measuring the attacker leak rate a per-node
// defence concedes versus one that replicates rules and merged sketch
// state; see internal/cluster.
//
// The partition scenario moves that fleet's gossip onto real loopback
// sockets and injects faults — drop-probability and propagation-delay
// sweeps plus a healed network partition — to measure how the defence
// degrades and recovers; see internal/cluster's HTTPTransport and
// FaultTransport.
//
// The syndicate scenario replays a coordinated ring that shares a pool
// of spoofed fingerprints, proxy exits and booking references, with every
// identity paced under the per-identity rule threshold. It contrasts
// volume rules alone — which leak the attack essentially whole — against
// the same rules backed by the incremental entity-linkage graph, which
// collapses the ring into one flagged component the gate's entity layer
// then denies wholesale; see internal/entitygraph and internal/loadgen.
//
// The economics scenario replays a budget-constrained seat-spinning
// operation — attackers paying per account registration, per request and
// per burned account — against three arms: no account tiering,
// loyalty-tiered gating (bulk seat-map probing restricted to members,
// per-tier rate allowances), and tiering plus live decoy inventory seeded
// into the attacker's enumeration range. The report tracks the attacker's
// ROI over time under each arm; see internal/account and internal/loadgen.
//
// All scenarios are deterministic per -seed (loadsim under its default
// virtual pacing; -loadreal switches to wall-clock pacing). With -serve
// the process exposes /metrics, /healthz, /debug/traces and /debug/pprof
// while the simulation runs, and stays up after the report until
// interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"funabuse/internal/attack"
	"funabuse/internal/booking"
	"funabuse/internal/core"
	"funabuse/internal/fingerprint"
	"funabuse/internal/metrics"
	"funabuse/internal/obs"
	"funabuse/internal/proxy"
	"funabuse/internal/workload"
)

// options carries everything run needs; flags map onto it 1:1. New knobs
// become fields here rather than positional parameters.
type options struct {
	scenario string
	days     int
	seed     uint64
	defend   bool
	honeypot bool

	// loadWorkers sizes the loadsim worker fleet; loadReal switches it
	// from virtual (deterministic) to wall-clock (open-loop) pacing.
	loadWorkers int
	loadReal    bool
	// loadDirect appends the in-process batch-vs-sequential decision
	// throughput section to the loadsim/clustersim reports; loadBatch is
	// its DecideBatch chunk size. Off by default: the section's timing
	// columns are wall-clock and would break report determinism.
	loadDirect bool
	loadBatch  int

	// serve exposes the telemetry mux on this address ("" disables).
	serve string
	// stayUp blocks after the report until SIGINT/SIGTERM so the serving
	// surface outlives the simulation. main sets it alongside serve; tests
	// leave it false.
	stayUp bool
	// telemetry, when non-nil, receives the run's collectors even without
	// -serve — tests use it to scrape a finished run in-process.
	telemetry *obs.Registry
	// traces, when non-nil, is exposed on /debug/traces.
	traces *obs.TraceRing
}

// scenarioNames lists every scenario run accepts, in the order the
// package doc introduces them; the unknown-scenario error echoes it.
var scenarioNames = []string{
	"seatspin", "smspump", "manual", "mixed",
	"loadsim", "clustersim", "partition", "syndicate", "economics",
}

func main() {
	scenario := flag.String("scenario", "seatspin",
		"scenario: "+strings.Join(scenarioNames, ", "))
	days := flag.Int("days", 7, "attack duration in simulated days")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	defend := flag.Bool("defend", false, "run the adaptive defender")
	honeypot := flag.Bool("honeypot", false, "redirect flagged clients to decoy inventory (implies -defend)")
	serve := flag.String("serve", "", "address for /metrics, /healthz and /debug endpoints (e.g. :9090); stays up after the report")
	loadWorkers := flag.Int("loadworkers", 4, "loadsim worker fleet size")
	loadReal := flag.Bool("loadreal", false, "pace loadsim on the wall clock (open-loop) instead of the deterministic virtual clock")
	loadDirect := flag.Bool("loaddirect", false, "append the in-process batch-vs-sequential decision throughput section to loadsim/clustersim reports")
	loadBatch := flag.Int("loadbatch", 64, "DecideBatch chunk size for -loaddirect")
	flag.Parse()

	opts := options{
		scenario:    *scenario,
		days:        *days,
		seed:        *seed,
		defend:      *defend,
		honeypot:    *honeypot,
		serve:       *serve,
		stayUp:      *serve != "",
		loadWorkers: *loadWorkers,
		loadReal:    *loadReal,
		loadDirect:  *loadDirect,
		loadBatch:   *loadBatch,
	}
	if err := run(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fraudsim:", err)
		os.Exit(1)
	}
}

// buildTelemetry registers the run's collectors on reg (allocating one if
// nil) and documents the app-level families.
func buildTelemetry(env *core.Env, opts options, reg *obs.Registry) *obs.Registry {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.Register(env.App.Collector())
	reg.Help("app_requests_total", "Requests entering the defence pipeline.")
	reg.Help("app_blocked_total", "Requests denied by blocklists or fingerprint rules.")
	reg.Help("app_rate_limited_total", "Requests denied by the rate-limit family.")
	reg.Help("app_served_total", "Requests that reached the business feature.")
	reg.Help("app_block_rules", "Live blocklist rules.")
	reg.Gauge("fraudsim_days").Set(float64(opts.days))
	reg.Gauge("fraudsim_seed").Set(float64(opts.seed))
	reg.Gauge("fraudsim_scenario_info",
		obs.Label{Name: "scenario", Value: opts.scenario}).Set(1)
	reg.Help("fraudsim_scenario_info", "Constant 1; the scenario label identifies the run.")
	return reg
}

// serveTelemetry boots the obs mux on addr and reports the bound address
// on stderr (useful with :0). The caller owns shutdown via the returned
// server.
func serveTelemetry(addr string, reg *obs.Registry, ring *obs.TraceRing, stderr io.Writer) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry listen: %w", err)
	}
	mux := obs.NewMux(obs.ServeConfig{
		Registry: reg,
		Traces:   ring,
		Health:   func() error { return nil },
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stderr, "fraudsim: telemetry listening on http://%s\n", ln.Addr())
	return srv, nil
}

func run(opts options, stdout, stderr io.Writer) error {
	if opts.days < 1 {
		fmt.Fprintf(stderr, "fraudsim: -days %d is invalid; clamped to 1\n", opts.days)
		opts.days = 1
	}
	if opts.honeypot {
		opts.defend = true
	}
	switch opts.scenario {
	case "loadsim":
		return runLoadsim(opts, stdout, stderr)
	case "clustersim":
		return runClustersim(opts, stdout, stderr)
	case "partition":
		return runPartition(opts, stdout, stderr)
	case "syndicate":
		return runSyndicate(opts, stdout, stderr)
	case "economics":
		return runEconomics(opts, stdout, stderr)
	case "seatspin", "smspump", "manual", "mixed":
	default:
		return fmt.Errorf("unknown scenario %q (valid: %s)",
			opts.scenario, strings.Join(scenarioNames, ", "))
	}
	horizon := time.Duration(opts.days) * 24 * time.Hour
	warmup := 2 * 24 * time.Hour

	envCfg := core.DefaultEnvConfig(opts.seed)
	envCfg.Defence = core.DefenceConfig{
		Blocklists: opts.defend,
		Honeypot:   opts.honeypot,
	}
	if opts.scenario == "smspump" || opts.scenario == "mixed" {
		envCfg.Defence.SMSPathLimit = 700
		envCfg.Defence.SMSPathWindow = 24 * time.Hour
	}
	envCfg.TargetDep = core.SimStart.Add(warmup + horizon + 72*time.Hour)
	env := core.NewEnv(envCfg)

	var reg *obs.Registry
	if opts.telemetry != nil || opts.serve != "" {
		reg = buildTelemetry(env, opts, opts.telemetry)
	}
	if opts.serve != "" {
		ring := opts.traces
		if ring == nil {
			ring = obs.NewTraceRing(obs.DefaultTraceCapacity)
		}
		srv, err := serveTelemetry(opts.serve, reg, ring, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	flights := append(env.FleetIDs(envCfg), envCfg.TargetID)
	wl := workload.DefaultConfig(flights, core.SimStart.Add(warmup+horizon))
	wl.HoldsPerHour = 60
	pop := workload.NewPopulation(wl, env.App, env.App, env.App, env.Sched, env.RNG.Derive("pop"), env.Registry)
	pop.Start()

	// Warm-up: learn the baseline before the attack.
	if err := env.Run(warmup); err != nil {
		return err
	}

	var defender *core.Defender
	if opts.defend {
		dcfg := core.DefaultDefenderConfig()
		dcfg.RedirectToHoneypot = opts.honeypot
		baseline := env.Bookings.JournalBetween(core.SimStart, core.SimStart.Add(warmup))
		defender = core.NewDefender(dcfg, env.App, env.Sched, baseline)
		defender.Start()
	}

	var spinner *attack.SeatSpinner
	var manual *attack.ManualSpinner
	var pumper *attack.SMSPumper
	until := core.SimStart.Add(warmup + horizon)

	if opts.scenario == "seatspin" || opts.scenario == "mixed" {
		rot := fingerprint.NewRotator(env.RNG.Derive("rot"),
			fingerprint.NewGenerator(env.RNG.Derive("fpgen")), fingerprint.WithSpoofing())
		spinner = attack.NewSeatSpinner(attack.SeatSpinnerConfig{
			ID:             "spin-1",
			Flight:         envCfg.TargetID,
			TargetNiP:      6,
			ReholdInterval: envCfg.Booking.HoldTTL,
			Departure:      envCfg.TargetDep,
			Identity:       attack.IdentityStructured,
			Parallel:       10,
		}, env.App, env.Sched, env.RNG.Derive("spinner"), rot,
			env.Proxies.NewSession("SG", proxy.RotatePerRequest))
		spinner.Start()
	}
	if opts.scenario == "smspump" || opts.scenario == "mixed" {
		rot := fingerprint.NewRotator(env.RNG.Derive("prot"),
			fingerprint.NewGenerator(env.RNG.Derive("pfp")), fingerprint.WithSpoofing())
		pumper = attack.NewSMSPumper(attack.SMSPumperConfig{
			ID:           "pump-1",
			Flight:       envCfg.TargetID,
			Tickets:      4,
			SendInterval: 3 * time.Minute,
			Until:        until,
		}, env.App, env.App, env.Sched, env.RNG.Derive("pumper"), env.Proxies, rot, env.Registry)
		pumper.Start()
	}
	if opts.scenario == "manual" {
		manual = attack.NewManualSpinner(attack.ManualSpinnerConfig{
			ID:        "manc-1",
			Flight:    envCfg.TargetID,
			PoolSize:  6,
			PartySize: 3,
			MeanGap:   10 * time.Minute,
			TypoRate:  0.1,
			Until:     until,
		}, env.App, env.Sched, env.RNG.Derive("manual"),
			env.Proxies.NewSession("TH", proxy.RotatePerRequest))
		manual.Start()
	}

	if err := env.Run(warmup + horizon); err != nil {
		return err
	}

	report(stdout, env, envCfg, pop, defender, spinner, manual, pumper)

	if opts.stayUp && opts.serve != "" {
		waitForInterrupt(stderr)
	}
	return nil
}

// waitForInterrupt blocks until SIGINT/SIGTERM so the telemetry surface
// outlives the report.
func waitForInterrupt(stderr io.Writer) {
	fmt.Fprintln(stderr, "fraudsim: report complete; telemetry stays up — interrupt to exit")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
}

func report(
	w io.Writer,
	env *core.Env,
	envCfg core.EnvConfig,
	pop *workload.Population,
	defender *core.Defender,
	spinner *attack.SeatSpinner,
	manual *attack.ManualSpinner,
	pumper *attack.SMSPumper,
) {
	t := metrics.NewTable("fraudsim report", "Metric", "Value")
	stats := env.App.Stats()
	t.AddRow("requests processed", metrics.FormatInt(int64(stats.Requests)))
	t.AddRow("requests blocked", metrics.FormatInt(int64(stats.Blocked)))
	t.AddRow("requests rate-limited", metrics.FormatInt(int64(stats.RateLimited)))
	t.AddRow("legitimate holds", metrics.FormatInt(int64(pop.Holds())))
	t.AddRow("legitimate friction", metrics.FormatInt(int64(pop.Friction())))

	if spinner != nil {
		s := spinner.Stats()
		t.AddRow("attacker holds", metrics.FormatInt(int64(s.Holds)))
		t.AddRow("attacker rotations", metrics.FormatInt(int64(len(s.Rotations))))
		if len(s.Rotations) > 0 {
			t.AddRow("mean rotation interval", s.MeanRotationInterval().Round(time.Minute).String())
		}
		var attackRecords []booking.Record
		for _, r := range env.Bookings.Journal() {
			if strings.HasPrefix(r.ActorID, "spin-1") {
				attackRecords = append(attackRecords, r)
			}
		}
		seatHours := booking.SeatHours(attackRecords, envCfg.TargetID, envCfg.Booking.HoldTTL)
		t.AddRow("seat-hours removed from sale", fmt.Sprintf("%.0f", seatHours))
	}
	if manual != nil {
		t.AddRow("manual attacker holds", metrics.FormatInt(int64(manual.Holds())))
		t.AddRow("manual attacker rejects", metrics.FormatInt(int64(manual.Rejects())))
	}
	if pumper != nil {
		t.AddRow("pump messages delivered", metrics.FormatInt(int64(pumper.Sent())))
		t.AddRow("owner SMS bill (pump)", fmt.Sprintf("$%.2f", env.Gateway.CostFor("pump-1")))
		t.AddRow("attacker SMS revenue", fmt.Sprintf("$%.2f", env.Gateway.RevenueFor("pump-1")))
	}
	if defender != nil {
		t.AddRow("defender rules installed", metrics.FormatInt(int64(defender.RulesAdded())))
		t.AddRow("honeypot redirects", metrics.FormatInt(int64(defender.Redirects())))
		if at, ok := defender.CapApplied(); ok {
			t.AddRow("NiP cap applied at", at.Format(time.RFC3339))
		}
	}
	if hp := env.App.Honeypot(); hp != nil {
		t.AddRow("decoy holds absorbed", metrics.FormatInt(int64(hp.DecoyHolds())))
	}
	fmt.Fprint(w, t.String())
}
