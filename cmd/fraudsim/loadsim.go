package main

import (
	"fmt"
	"io"
	"time"

	"funabuse/internal/loadgen"
	"funabuse/internal/metrics"
	"funabuse/internal/obs"
	"funabuse/internal/simclock"
)

// The loadsim scenario drives the httpgate middleware over real sockets
// with mixed traffic: honest background browsing, a Case A seat-spinning
// burst against the booking-hold path, and a Table I SMS-pumping fan-out
// against the boarding-pass path. Abusive clients adapt: a blocklist
// denial schedules a fingerprint rotation after a reaction delay, so each
// defence arm measures the rule→rotation arms race it induces.
const (
	loadsimPathSearch = "/search"
	loadsimPathHold   = "/booking/hold"
	loadsimPathSMS    = "/checkin/boardingpass/sms"
)

// loadsimEpoch anchors virtual-clock runs so the schedule is
// bit-identical per seed. Wall runs re-anchor at time.Now instead.
var loadsimEpoch = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)

// loadsimScenario is the fixed scenario shape; only the seed and start
// vary. Roughly a minute of traffic, compressed so second-scale reaction
// delays play out several rotation rounds.
func loadsimScenario(seed uint64, start time.Time) loadgen.Scenario {
	return loadgen.Scenario{
		Seed:  seed,
		Start: start,
		Classes: []loadgen.Class{
			{
				Name:    "honest",
				Kind:    loadgen.Honest,
				Clients: 12,
				Paths:   []string{loadsimPathSearch, loadsimPathHold, loadsimPathSMS},
				Phases:  []loadgen.Phase{{Dur: 60 * time.Second, Rate: 4}},
			},
			{
				Name:         "seatspin",
				Kind:         loadgen.SeatSpin,
				Clients:      3,
				Paths:        []string{loadsimPathHold},
				ReactionMean: 6 * time.Second,
				Phases: []loadgen.Phase{
					{Dur: 10 * time.Second, Rate: 0},
					{Dur: 50 * time.Second, Rate: 10},
				},
			},
			{
				Name:         "smspump",
				Kind:         loadgen.SMSPump,
				Clients:      3,
				Paths:        []string{loadsimPathSMS},
				Resources:    80,
				ReactionMean: 6 * time.Second,
				Phases: []loadgen.Phase{
					{Dur: 15 * time.Second, Rate: 0},
					{Dur: 45 * time.Second, Rate: 12},
				},
			},
		},
	}
}

// loadsimArm is one defence configuration the plan is replayed against.
type loadsimArm struct {
	name      string
	pathLimit bool
}

// loadsimArms are the two ends of the paper's comparison: reactive
// fingerprint rules alone, then the same rules backed by per-path and
// per-booking-reference rate limits that cap what rotation can recover.
var loadsimArms = []loadsimArm{
	{name: "blocklist"},
	{name: "blocklist+path-limit", pathLimit: true},
}

// armOutcome is one arm's measurements, joined for the report.
type armOutcome struct {
	arm    loadsimArm
	result *loadgen.Result
	rules  []loadgen.Rule
}

// runLoadsim replays one seeded plan against each defence arm on a live
// httpgate-backed server and reports the arms-race outcome side by side.
// Virtual pacing (the default) makes the whole run bit-deterministic per
// seed; -loadreal paces the same plan open-loop in wall time, which is
// where the intended-start latency column becomes meaningful.
func runLoadsim(opts options, stdout, stderr io.Writer) error {
	start := loadsimEpoch
	if opts.loadReal {
		start = time.Now()
	}
	sc := loadsimScenario(opts.seed, start)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if opts.telemetry != nil || opts.serve != "" {
		reg = opts.telemetry
		if reg == nil {
			reg = obs.NewRegistry()
		}
		reg.Gauge("fraudsim_seed").Set(float64(opts.seed))
		reg.Gauge("fraudsim_scenario_info",
			obs.Label{Name: "scenario", Value: "loadsim"}).Set(1)
		reg.Help("fraudsim_scenario_info", "Constant 1; the scenario label identifies the run.")
	}
	if opts.serve != "" {
		ring := opts.traces
		if ring == nil {
			ring = obs.NewTraceRing(obs.DefaultTraceCapacity)
		}
		srv, err := serveTelemetry(opts.serve, reg, ring, stderr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	outcomes := make([]armOutcome, 0, len(loadsimArms))
	for _, arm := range loadsimArms {
		out, err := runLoadsimArm(opts, plan, arm, reg, stderr)
		if err != nil {
			return fmt.Errorf("arm %q: %w", arm.name, err)
		}
		outcomes = append(outcomes, out)
	}

	fmt.Fprint(stdout, loadsimReport(outcomes, opts.loadReal).String())

	if opts.loadDirect {
		if err := loadsimDirect(opts, plan, stdout); err != nil {
			return fmt.Errorf("direct section: %w", err)
		}
	}

	if opts.stayUp && opts.serve != "" {
		waitForInterrupt(stderr)
	}
	return nil
}

// runLoadsimArm boots a fresh defended target for the arm, replays the
// shared plan against it, and tears the target down. The gate and its
// rule-deploying defender share the runner's clock, so in virtual mode
// rule windows and reaction delays line up with the schedule exactly.
func runLoadsimArm(opts options, plan *loadgen.Plan, arm loadsimArm, reg *obs.Registry, stderr io.Writer) (armOutcome, error) {
	var manual *simclock.Manual
	tcfg := loadgen.TargetConfig{
		RuleThreshold: 40,
		RuleWindow:    30 * time.Second,
		RulePaths:     []string{loadsimPathHold, loadsimPathSMS},
	}
	if !opts.loadReal {
		manual = simclock.NewManual(plan.Scenario.Start)
		tcfg.Clock = manual
	}
	if arm.pathLimit {
		tcfg.PathLimit = 300
		tcfg.PathWindow = time.Minute
		tcfg.ResourceLimit = 6
		tcfg.ResourceWindow = time.Hour
	}
	target, err := loadgen.StartTarget(tcfg)
	if err != nil {
		return armOutcome{}, err
	}
	defer target.Close()
	fmt.Fprintf(stderr, "fraudsim: loadsim arm %q driving %s (%d arrivals)\n",
		arm.name, target.URL, len(plan.Arrivals))

	runner, err := loadgen.NewRunner(loadgen.RunnerConfig{
		Plan:      plan,
		BaseURL:   target.URL,
		Workers:   opts.loadWorkers,
		Virtual:   manual,
		Telemetry: reg,
		Arm:       arm.name,
	})
	if err != nil {
		return armOutcome{}, err
	}
	res, err := runner.Run()
	if err != nil {
		return armOutcome{}, err
	}
	return armOutcome{arm: arm, result: res, rules: target.Deployer.Rules()}, nil
}

// loadsimReport renders the per-arm comparison. Every column comes from
// the same seeded plan, so differences are the defence configuration's.
func loadsimReport(outcomes []armOutcome, wall bool) *metrics.Table {
	headers := make([]string, 0, len(outcomes)+1)
	headers = append(headers, "Metric")
	for _, o := range outcomes {
		headers = append(headers, o.arm.name)
	}
	t := metrics.NewTable("loadsim report", headers...)

	row := func(label string, cell func(armOutcome) string) {
		cells := make([]string, 0, len(outcomes)+1)
		cells = append(cells, label)
		for _, o := range outcomes {
			cells = append(cells, cell(o))
		}
		t.AddRow(cells...)
	}

	row("plan hash", func(o armOutcome) string {
		return fmt.Sprintf("%016x", o.result.PlanHash)
	})
	row("requests completed", func(o armOutcome) string {
		var done uint64
		for _, c := range o.result.Classes {
			done += c.Completed()
		}
		return metrics.FormatInt(int64(done))
	})
	row("rules deployed", func(o armOutcome) string {
		return metrics.FormatInt(int64(len(o.rules)))
	})
	row("attacker rotations", func(o armOutcome) string {
		return metrics.FormatInt(int64(len(o.result.Rotations())))
	})
	row("mean time-to-rotation", func(o armOutcome) string {
		mean, ok := loadgen.MeanTimeToRotation(o.result.Rotations(), o.rules)
		if !ok {
			return "n/a"
		}
		return mean.Round(time.Millisecond).String()
	})
	row("attacker leak rate", func(o armOutcome) string {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", rate)
	})
	row("honest admit rate", func(o armOutcome) string {
		var admitted, done uint64
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			admitted += c.Admitted
			done += c.Completed()
		}
		if done == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(admitted)/float64(done))
	})
	row("degraded responses", func(o armOutcome) string {
		var n uint64
		for _, c := range o.result.Classes {
			n += c.DegradedSeen
		}
		return metrics.FormatInt(int64(n))
	})
	if wall {
		row("mean intended-start latency", func(o armOutcome) string {
			var sum time.Duration
			var classes int
			for _, c := range o.result.Classes {
				if c.Completed() == 0 {
					continue
				}
				sum += c.MeanLatency
				classes++
			}
			if classes == 0 {
				return "n/a"
			}
			return (sum / time.Duration(classes)).Round(time.Millisecond).String()
		})
	}
	return t
}
