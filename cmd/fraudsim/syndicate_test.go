package main

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"funabuse/internal/loadgen"
)

// TestSyndicateDeterministic runs the virtual-paced syndicate scenario
// with one seed across different worker counts and again with the same
// worker count, requiring byte-identical reports each time, and pins the
// seed-1 plan hash the report prints.
func TestSyndicateDeterministic(t *testing.T) {
	runOnce := func(workers int) string {
		var out bytes.Buffer
		opts := options{scenario: "syndicate", days: 1, seed: 1, loadWorkers: workers}
		if err := run(opts, &out, io.Discard); err != nil {
			t.Fatalf("run(syndicate, %d workers): %v", workers, err)
		}
		return out.String()
	}
	first := runOnce(1)
	second := runOnce(4)
	if first != second {
		t.Fatalf("reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", first, second)
	}
	if again := runOnce(4); again != second {
		t.Fatal("repeated run with identical options produced a different report")
	}
	plan, err := loadgen.BuildPlan(loadgen.SyndicateScenario(1, loadsimEpoch))
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	wantHash := fmt.Sprintf("%016x", plan.Hash())
	for _, want := range []string{"plan hash", wantHash, "flagged components", "syndicate leak rate"} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
}

// TestSyndicateLeakContrast asserts the E17 tentpole claim on the seed-1
// run: per-identity volume rules leak the ring's traffic whole (no pooled
// fingerprint ever crosses the threshold), the entity-graph arm collapses
// the ring into one flagged component and cuts the leak by an order of
// magnitude, and neither arm costs a single honest request.
func TestSyndicateLeakContrast(t *testing.T) {
	plan, err := loadgen.BuildPlan(loadgen.SyndicateScenario(1, loadsimEpoch))
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	opts := options{scenario: "syndicate", seed: 1, loadWorkers: 2}
	outcomes, err := syndicateOutcomes(opts, plan, nil, io.Discard)
	if err != nil {
		t.Fatalf("outcomes: %v", err)
	}
	if len(outcomes) != len(syndicateArms) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(syndicateArms))
	}

	leak := make(map[string]float64, len(outcomes))
	for _, o := range outcomes {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			t.Fatalf("arm %q: no abusive traffic completed", o.arm.name)
		}
		leak[o.arm.name] = rate

		// The ring's whole design: no volume rule ever fires.
		if len(o.rules) != 0 {
			t.Fatalf("arm %q deployed %d volume rules; pooled identities must stay under threshold", o.arm.name, len(o.rules))
		}
		// Neither arm may cost honest traffic.
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			if done := c.Completed(); c.Admitted != done {
				t.Fatalf("arm %q: honest class %q admitted %d of %d", o.arm.name, c.Name, c.Admitted, done)
			}
		}
	}

	volume := leak["volume rules"]
	if volume != 1.0 {
		t.Fatalf("volume-rules leak = %v, want 1.0: the ring must be invisible to per-identity defences", volume)
	}
	graphArm := leak["volume + entity graph"]
	if graphArm >= volume {
		t.Fatalf("entity-graph arm leak %v, want < volume arm %v", graphArm, volume)
	}
	if graphArm > 0.2 {
		t.Fatalf("entity-graph arm leak %v, want <= 0.2: the flag should land within seconds of the ramp", graphArm)
	}

	// The graph arm's linkage collapses the whole ring into exactly one
	// flagged component, and the entity layer does the denying.
	for _, o := range outcomes {
		if !o.arm.graph {
			continue
		}
		if o.stats.FlaggedComponents != 1 {
			t.Fatalf("flagged components = %d, want exactly 1 (the ring)", o.stats.FlaggedComponents)
		}
		var entity uint64
		for _, c := range o.result.Classes {
			entity += c.Denied["entity-graph"]
		}
		if entity == 0 {
			t.Fatal("graph arm recorded no entity denials")
		}
	}
}
