package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"funabuse/internal/core"
	"funabuse/internal/obs"
)

func TestRunUnknownScenario(t *testing.T) {
	err := run(options{scenario: "nonsense", days: 1, seed: 1}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// The error names every valid scenario so a typo is self-correcting.
	for _, name := range scenarioNames {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list scenario %q", err, name)
		}
	}
}

func TestRunManualScenarioDefended(t *testing.T) {
	var out bytes.Buffer
	if err := run(options{scenario: "manual", days: 1, seed: 1, defend: true}, &out, io.Discard); err != nil {
		t.Fatalf("run(manual): %v", err)
	}
	if !strings.Contains(out.String(), "requests processed") {
		t.Fatal("report missing from stdout")
	}
}

func TestRunMixedWithHoneypot(t *testing.T) {
	if err := run(options{scenario: "mixed", days: 1, seed: 2, honeypot: true}, io.Discard, io.Discard); err != nil {
		t.Fatalf("run(mixed honeypot): %v", err)
	}
}

// TestRunClampWarnsOnStderr pins the fix for the silent -days clamp: an
// out-of-range value is still clamped to 1, but the operator is told.
func TestRunClampWarnsOnStderr(t *testing.T) {
	var errBuf bytes.Buffer
	// The unknown scenario aborts before any simulation, keeping the test
	// fast; the clamp warning is emitted first.
	if err := run(options{scenario: "nonsense", days: 0, seed: 1}, io.Discard, &errBuf); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(errBuf.String(), "-days 0 is invalid; clamped to 1") {
		t.Fatalf("stderr missing clamp warning: %q", errBuf.String())
	}

	errBuf.Reset()
	if err := run(options{scenario: "nonsense", days: 3, seed: 1}, io.Discard, &errBuf); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if errBuf.String() != "" {
		t.Fatalf("valid -days produced a warning: %q", errBuf.String())
	}
}

// TestMetricsGolden runs the deterministic seed-1 manual scenario and
// requires the /metrics exposition to (a) parse line by line under the
// strict parser and (b) be byte-identical across two scrapes of the
// quiesced run.
func TestMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	err := run(options{scenario: "manual", days: 1, seed: 1, defend: true, telemetry: reg},
		io.Discard, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var first, second bytes.Buffer
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatalf("scrape 1: %v", err)
	}
	if err := reg.WritePrometheus(&second); err != nil {
		t.Fatalf("scrape 2: %v", err)
	}
	if first.String() != second.String() {
		t.Fatalf("scrapes differ:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}

	samples, err := obs.ParseText(strings.NewReader(first.String()))
	if err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["app_requests_total"] <= 0 {
		t.Fatalf("app_requests_total = %v, want > 0", byName["app_requests_total"])
	}
	if byName["app_served_total"] <= 0 {
		t.Fatalf("app_served_total = %v, want > 0", byName["app_served_total"])
	}
	if byName["fraudsim_seed"] != 1 {
		t.Fatalf("fraudsim_seed = %v, want 1", byName["fraudsim_seed"])
	}
	var scenarioLabel string
	for _, s := range samples {
		if s.Name == "fraudsim_scenario_info" {
			for _, l := range s.Labels {
				if l.Name == "scenario" {
					scenarioLabel = l.Value
				}
			}
		}
	}
	if scenarioLabel != "manual" {
		t.Fatalf("fraudsim_scenario_info scenario label = %q, want manual", scenarioLabel)
	}
}

// TestObsSmoke boots the telemetry mux exactly as -serve does and fails
// if /metrics emits a single unparseable line or /healthz is unhealthy.
// `make obs-smoke` runs this test.
func TestObsSmoke(t *testing.T) {
	envCfg := core.DefaultEnvConfig(1)
	env := core.NewEnv(envCfg)
	reg := buildTelemetry(env, options{scenario: "seatspin", days: 1, seed: 1}, nil)
	ring := obs.NewTraceRing(8)
	ring.Record(obs.Span{Path: "/booking/hold", Verdict: obs.VerdictAdmit})

	srv := httptest.NewServer(obs.NewMux(obs.ServeConfig{
		Registry: reg,
		Traces:   ring,
		Health:   func() error { return nil },
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("/metrics empty")
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", health.StatusCode)
	}
}

// TestServeTelemetryBindsEphemeralPort exercises the -serve plumbing:
// bind :0, report the bound address on stderr, serve /metrics live.
func TestServeTelemetryBindsEphemeralPort(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("smoke_total").Inc()
	var errBuf bytes.Buffer
	srv, err := serveTelemetry("127.0.0.1:0", reg, obs.NewTraceRing(4), &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	line := strings.TrimSpace(errBuf.String())
	const prefix = "fraudsim: telemetry listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("stderr = %q, want %q prefix", line, prefix)
	}
	url := strings.TrimPrefix(line, prefix)
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("live /metrics unparseable: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "smoke_total" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("smoke_total missing from live scrape")
	}
}
