package main

import (
	"testing"
)

func TestRunUnknownScenario(t *testing.T) {
	if err := run("nonsense", 1, 1, false, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunManualScenarioDefended(t *testing.T) {
	if err := run("manual", 1, 1, true, false); err != nil {
		t.Fatalf("run(manual): %v", err)
	}
}

func TestRunMixedWithHoneypot(t *testing.T) {
	if err := run("mixed", 1, 2, false, true); err != nil {
		t.Fatalf("run(mixed honeypot): %v", err)
	}
}
