package main

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"funabuse/internal/loadgen"
)

// TestEconomicsDeterministic runs the virtual-paced economics scenario
// with one seed across different worker counts and again with the same
// worker count, requiring byte-identical reports each time, and pins the
// seed-1 plan hash the report prints.
func TestEconomicsDeterministic(t *testing.T) {
	runOnce := func(workers int) string {
		var out bytes.Buffer
		opts := options{scenario: "economics", days: 1, seed: 1, loadWorkers: workers}
		if err := run(opts, &out, io.Discard); err != nil {
			t.Fatalf("run(economics, %d workers): %v", workers, err)
		}
		return out.String()
	}
	first := runOnce(1)
	second := runOnce(4)
	if first != second {
		t.Fatalf("reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", first, second)
	}
	if again := runOnce(4); again != second {
		t.Fatal("repeated run with identical options produced a different report")
	}
	plan, err := loadgen.BuildPlan(loadgen.EconomicsScenario(1, loadsimEpoch))
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	wantHash := fmt.Sprintf("%016x", plan.Hash())
	for _, want := range []string{"plan hash", wantHash, "attacker ROI", "decoy hits", "accounts burned"} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
}

// TestEconomicsROIOrdering asserts the E18 tentpole claim on the seed-1
// run: each added defence rung strictly lowers the attacker's return on
// investment — no tiering > tiering > tiering + honeypots — without
// costing honest traffic. Decoy hits, burned accounts and budget-stopped
// arrivals appear only in the honeypot arm, whose attacker finishes under
// water; neither tiering-only arm deploys a rule.
func TestEconomicsROIOrdering(t *testing.T) {
	plan, err := loadgen.BuildPlan(loadgen.EconomicsScenario(1, loadsimEpoch))
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	opts := options{scenario: "economics", seed: 1, loadWorkers: 2}
	outcomes, err := econOutcomes(opts, plan, nil, io.Discard)
	if err != nil {
		t.Fatalf("outcomes: %v", err)
	}
	if len(outcomes) != len(econArms) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(econArms))
	}

	attacker := econAttackerClass(plan.Scenario)
	roi := make([]float64, len(outcomes))
	for i, o := range outcomes {
		r, ok := o.ledger.ROI()
		if !ok {
			t.Fatalf("arm %q: attacker spent nothing", o.arm.name)
		}
		roi[i] = r

		// No arm may price out honest customers.
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			done := c.Completed()
			if done == 0 {
				t.Fatalf("arm %q: honest class %q completed nothing", o.arm.name, c.Name)
			}
			if rate := float64(c.Admitted) / float64(done); rate < 0.99 {
				t.Fatalf("arm %q: honest admit rate %v, want >= 0.99", o.arm.name, rate)
			}
		}

		ac := o.result.Classes[attacker]
		if o.arm.decoys {
			if o.decoys.HitCount() == 0 {
				t.Fatalf("arm %q: no decoy hits; the enumeration must touch seeded inventory", o.arm.name)
			}
			if len(o.rules) == 0 {
				t.Fatalf("arm %q: decoy hits deployed no rules", o.arm.name)
			}
			if ac.Burned == 0 {
				t.Fatalf("arm %q: rules burned no accounts", o.arm.name)
			}
			if ac.BudgetSkipped == 0 {
				t.Fatalf("arm %q: burn costs never exhausted a budget", o.arm.name)
			}
		} else {
			if len(o.rules) != 0 {
				t.Fatalf("arm %q deployed %d rules without decoys", o.arm.name, len(o.rules))
			}
			if ac.Burned != 0 || ac.BudgetSkipped != 0 {
				t.Fatalf("arm %q: burned=%d budgetSkipped=%d, want 0 without decoy rules",
					o.arm.name, ac.Burned, ac.BudgetSkipped)
			}
		}
	}

	for i := 1; i < len(roi); i++ {
		if !(roi[i] < roi[i-1]) {
			t.Fatalf("ROI not strictly decreasing: arm %q %v !< arm %q %v",
				outcomes[i].arm.name, roi[i], outcomes[i-1].arm.name, roi[i-1])
		}
	}
	// The honeypot arm pushes the operation under water outright.
	last := outcomes[len(outcomes)-1]
	if p := last.ledger.ProfitUSD(); p >= 0 {
		t.Fatalf("honeypot arm attacker profit $%.2f, want negative", p)
	}
}
