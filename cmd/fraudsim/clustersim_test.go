package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"funabuse/internal/loadgen"
)

// TestClustersimDeterministic runs the virtual-paced clustersim with one
// seed across different worker counts and again with the same worker
// count, requiring byte-identical reports each time — the whole-command
// form of the cluster golden tests.
func TestClustersimDeterministic(t *testing.T) {
	runOnce := func(workers int) string {
		var out bytes.Buffer
		opts := options{scenario: "clustersim", days: 1, seed: 1, loadWorkers: workers}
		if err := run(opts, &out, io.Discard); err != nil {
			t.Fatalf("run(clustersim, %d workers): %v", workers, err)
		}
		return out.String()
	}
	first := runOnce(1)
	second := runOnce(4)
	if first != second {
		t.Fatalf("reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", first, second)
	}
	if again := runOnce(4); again != second {
		t.Fatal("repeated run with identical options produced a different report")
	}
	for _, want := range []string{"plan hash", "gossip interval", "rules replicated", "attacker leak rate"} {
		if !strings.Contains(first, want) {
			t.Fatalf("report missing %q:\n%s", want, first)
		}
	}
}

// TestClustersimLeakCurve asserts the tentpole claim on the seed-1 run:
// a per-node-only defence leaks strictly more than every
// sketch-replicated fleet, and within a fixed fleet size the leak rate
// falls monotonically as the gossip interval shrinks.
func TestClustersimLeakCurve(t *testing.T) {
	sc := loadgen.LowAndSlowScenario(1, loadsimEpoch)
	plan, err := loadgen.BuildPlan(sc)
	if err != nil {
		t.Fatalf("build plan: %v", err)
	}
	opts := options{scenario: "clustersim", seed: 1, loadWorkers: 2}
	outcomes, err := clustersimOutcomes(opts, plan, nil, io.Discard)
	if err != nil {
		t.Fatalf("outcomes: %v", err)
	}

	leak := make(map[string]float64, len(outcomes))
	for _, o := range outcomes {
		rate, ok := o.result.AbusiveLeakRate()
		if !ok {
			t.Fatalf("arm %q: no abusive traffic completed", o.arm.name)
		}
		leak[o.arm.name] = rate
	}

	perNode := leak["per-node n=4"]
	if perNode != 1.0 {
		t.Fatalf("per-node defence leak = %v, want 1.0: the distributed volume must be invisible without replication", perNode)
	}
	for _, o := range outcomes {
		if !o.arm.replicate {
			continue
		}
		if leak[o.arm.name] >= perNode {
			t.Fatalf("replicated arm %q leak %v, want < per-node %v", o.arm.name, leak[o.arm.name], perNode)
		}
	}
	// Monotone in gossip interval at n=4: 8s ≥ 4s ≥ 2s, strict overall.
	g8, g4, g2 := leak["merged n=4 g=8s"], leak["merged n=4 g=4s"], leak["merged n=4 g=2s"]
	if g8 < g4 || g4 < g2 {
		t.Fatalf("leak not monotone in gossip interval: 8s=%v 4s=%v 2s=%v", g8, g4, g2)
	}
	if g8 <= g2 {
		t.Fatalf("leak flat across the gossip sweep: 8s=%v 2s=%v", g8, g2)
	}
	// The all-seeing single node lower-bounds every gossiping fleet.
	if single := leak["single-node"]; single > g2 {
		t.Fatalf("single-node leak %v above fastest fleet %v", single, g2)
	}
	// Replication must never tax honest traffic.
	for _, o := range outcomes {
		for _, c := range o.result.Classes {
			if c.Kind.Abusive() {
				continue
			}
			if done := c.Completed(); c.Admitted != done {
				t.Fatalf("arm %q: honest class %q admitted %d of %d", o.arm.name, c.Name, c.Admitted, done)
			}
		}
	}
}
