// Command figures regenerates every table and figure of the paper's
// evaluation from the simulation framework:
//
//	figures -exp fig1       # Fig. 1  — NiP distribution across three weeks
//	figures -exp table1     # Table I — per-country SMS surge
//	figures -exp caseA      # Case A  — fingerprint rotation war statistics
//	figures -exp caseB      # Case B  — automated vs manual Seat Spinning
//	figures -exp caseC      # Case C  — SMS rate-limit key ablation
//	figures -exp detection  # §III    — detector comparison
//	figures -exp honeypot   # §V      — honeypot economics
//	figures -exp economics  # §V      — economic deterrent sweeps
//	figures -exp biometric  # §V      — behavioural-biometric future work
//	figures -exp ablations  # design-choice studies (TTL, rule keys, gaps)
//	figures -exp carrier    # §V      — settlement-chain mitigations
//	figures -exp pricing    # §II-A   — DoI fare-ladder distortion
//	figures -exp all        # everything, in order
//
// Pass -seed to vary the deterministic scenario seed and -csv to emit
// machine-readable output where the experiment produces a table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"funabuse/internal/core"
	"funabuse/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1, table1, caseA, caseB, caseC, detection, honeypot, economics, biometric, ablations, carrier, pricing, all")
	seed := flag.Uint64("seed", 1, "deterministic scenario seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	if err := run(*exp, *seed, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(exp string, seed uint64, csv bool) error {
	runners := map[string]func(uint64, bool) error{
		"fig1":      runFig1,
		"table1":    runTable1,
		"caseA":     runCaseA,
		"caseB":     runCaseB,
		"caseC":     runCaseC,
		"detection": runDetection,
		"honeypot":  runHoneypot,
		"economics": runEconomics,
		"biometric": runBiometric,
		"ablations": runAblations,
		"carrier":   runCarrier,
		"pricing":   runPricing,
	}
	if exp == "all" {
		for _, id := range []string{"fig1", "table1", "caseA", "caseB", "caseC", "detection", "honeypot", "economics", "biometric", "ablations", "carrier", "pricing"} {
			if err := runners[id](seed, csv); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println()
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r(seed, csv)
}

func emit(t *metrics.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}

func runFig1(seed uint64, csv bool) error {
	res, err := core.RunFig1(core.DefaultFig1Config(seed))
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	fmt.Printf("attacker: final NiP %d after cap, %d holds total\n",
		res.AttackerFinalNiP, res.AttackerHolds)
	return nil
}

func runTable1(seed uint64, csv bool) error {
	res, err := core.RunTable1(core.DefaultTable1Config(seed))
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	fmt.Printf("global boarding-pass increase: %+.1f%%; countries targeted: %d; pump volume: %d\n",
		res.GlobalIncreasePct, res.AttackCountries, res.PumpMessages)
	fmt.Printf("owner SMS bill for pump traffic: $%.0f; attacker revenue share: $%.0f\n",
		res.AppCostUSD, res.FraudRevenueUSD)
	return nil
}

func runCaseA(seed uint64, csv bool) error {
	res, err := core.RunCaseA(core.DefaultCaseAConfig(seed))
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	fmt.Printf("paper reference: mean rotation 5.3h; attack ceased 2 days before departure\n")
	fmt.Printf("measured: mean rotation %v; ceased %v before departure\n",
		res.MeanRotationInterval.Round(time.Minute),
		res.Departure.Sub(res.LastAttackHold).Round(time.Hour))
	return nil
}

func runCaseB(seed uint64, csv bool) error {
	res, err := core.RunCaseB(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	return nil
}

func runCaseC(seed uint64, csv bool) error {
	res, err := core.RunCaseC(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	return nil
}

func runDetection(seed uint64, csv bool) error {
	res, err := core.RunDetectionComparison(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	fmt.Printf("sessions: human=%d scraper=%d spinner=%d pumper=%d\n",
		res.HumanSessions, res.ScraperSessions, res.SpinnerSessions, res.PumperSessions)
	return nil
}

func runHoneypot(seed uint64, csv bool) error {
	res, err := core.RunHoneypot(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	return nil
}

func runBiometric(seed uint64, csv bool) error {
	res, err := core.RunBiometric(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	return nil
}

func runAblations(seed uint64, csv bool) error {
	res, err := core.RunAblations(seed)
	if err != nil {
		return err
	}
	for _, t := range res.Tables() {
		emit(t, csv)
		fmt.Println()
	}
	return nil
}

func runCarrier(seed uint64, csv bool) error {
	res, err := core.RunCarrier(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	return nil
}

func runPricing(seed uint64, csv bool) error {
	res, err := core.RunPricing(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	return nil
}

func runEconomics(seed uint64, csv bool) error {
	res, err := core.RunEconomics(seed)
	if err != nil {
		return err
	}
	emit(res.Table(), csv)
	fmt.Printf("analytic break-even CAPTCHA solve cost: $%.4f/solve (market prices are ~$0.002)\n",
		res.BreakEvenSolveCostUSD)
	return nil
}
