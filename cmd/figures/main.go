// Command figures regenerates every table and figure of the paper's
// evaluation from the simulation framework:
//
//	figures -exp fig1       # Fig. 1  — NiP distribution across three weeks
//	figures -exp table1     # Table I — per-country SMS surge
//	figures -exp caseA      # Case A  — fingerprint rotation war statistics
//	figures -exp caseB      # Case B  — automated vs manual Seat Spinning
//	figures -exp caseC      # Case C  — SMS rate-limit key ablation
//	figures -exp detection  # §III    — detector comparison
//	figures -exp honeypot   # §V      — honeypot economics
//	figures -exp economics  # §V      — economic deterrent sweeps
//	figures -exp biometric  # §V      — behavioural-biometric future work
//	figures -exp ablations  # design-choice studies (TTL, rule keys, gaps)
//	figures -exp carrier    # §V      — settlement-chain mitigations
//	figures -exp pricing    # §II-A   — DoI fare-ladder distortion
//	figures -exp chaos      # §V      — defence-layer outages, fail-open vs fail-closed
//	figures -exp all        # everything, in order
//
// Pass -seed to vary the deterministic scenario seed and -csv to emit
// machine-readable output where the experiment produces a table.
//
// Replicate mode runs an experiment across many consecutive seeds on a
// worker pool and reports per-metric mean/std/min/max instead of the
// single-seed table:
//
//	figures -exp fig1 -replicates 16 -workers 8
//	figures -exp all  -replicates 8            # workers defaults to GOMAXPROCS
//
// Single-seed output (-replicates 1, the default) is unchanged. With
// -exp all the experiments fan out concurrently across the worker budget;
// output is buffered per experiment and printed in the canonical order
// above regardless of completion order.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"funabuse/internal/core"
	"funabuse/internal/metrics"
	"funabuse/internal/runner"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1, table1, caseA, caseB, caseC, detection, honeypot, economics, biometric, ablations, carrier, pricing, chaos, all")
	seed := flag.Uint64("seed", 1, "deterministic scenario seed (base seed in replicate mode)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	replicates := flag.Int("replicates", 1, "seed replicates per experiment; >1 reports mean/std/min/max across seeds")
	workers := flag.Int("workers", 0, "worker-pool size for replicates and -exp all (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(os.Stdout, *exp, *seed, *csv, *replicates, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// experimentOrder is the canonical -exp all sequence.
var experimentOrder = []string{
	"fig1", "table1", "caseA", "caseB", "caseC", "detection",
	"honeypot", "economics", "biometric", "ablations", "carrier", "pricing",
	"chaos",
}

// singleRunners renders each experiment's single-seed artefact.
var singleRunners = map[string]func(io.Writer, uint64, bool) error{
	"fig1":      runFig1,
	"table1":    runTable1,
	"caseA":     runCaseA,
	"caseB":     runCaseB,
	"caseC":     runCaseC,
	"detection": runDetection,
	"honeypot":  runHoneypot,
	"economics": runEconomics,
	"biometric": runBiometric,
	"ablations": runAblations,
	"carrier":   runCarrier,
	"pricing":   runPricing,
	"chaos":     runChaos,
}

func run(w io.Writer, exp string, seed uint64, csv bool, replicates, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if exp == "all" {
		return runAll(w, seed, csv, replicates, workers)
	}
	if _, ok := singleRunners[exp]; !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return runOne(w, exp, seed, csv, replicates, workers)
}

// runOne runs a single experiment: the canonical single-seed artefact by
// default, or a replicate summary when replicates > 1.
func runOne(w io.Writer, exp string, seed uint64, csv bool, replicates, workers int) error {
	if replicates <= 1 {
		return singleRunners[exp](w, seed, csv)
	}
	fn, ok := core.ExperimentByID(exp)
	if !ok {
		return fmt.Errorf("experiment %q has no replicate mode", exp)
	}
	sum, err := runner.Run(exp, runner.Config{
		Replicates: replicates,
		Workers:    workers,
		BaseSeed:   seed,
	}, fn)
	if err != nil {
		return err
	}
	emit(w, sum.Table(), csv)
	fmt.Fprintf(w, "replicate wall time: mean %.2fs std %.2fs (total %.2fs on %d workers)\n",
		sum.ReplicateSeconds.Mean(), sum.ReplicateSeconds.Std(),
		sum.Elapsed.Seconds(), sum.Workers)
	return nil
}

// runAll fans the canonical experiment list out across the worker budget.
// Each experiment renders into its own buffer; buffers are printed in
// canonical order once every job has finished, so parallel runs emit
// byte-identical output to -workers 1. Replicate pools inside each
// experiment share the same worker budget: total in-flight replicates is
// bounded by workers * experiments-in-flight, which the Go scheduler
// time-shares — determinism never depends on the interleaving.
func runAll(w io.Writer, seed uint64, csv bool, replicates, workers int) error {
	bufs := make([]bytes.Buffer, len(experimentOrder))
	errs := make([]error, len(experimentOrder))

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range experimentOrder {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = runOne(&bufs[i], id, seed, csv, replicates, workers)
		}(i, id)
	}
	wg.Wait()

	for i, id := range experimentOrder {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", id, errs[i])
		}
		if _, err := bufs[i].WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func emit(w io.Writer, t *metrics.Table, csv bool) {
	if csv {
		fmt.Fprint(w, t.CSV())
		return
	}
	fmt.Fprint(w, t.String())
}

func runFig1(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunFig1(core.DefaultFig1Config(seed))
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	fmt.Fprintf(w, "attacker: final NiP %d after cap, %d holds total\n",
		res.AttackerFinalNiP, res.AttackerHolds)
	return nil
}

func runTable1(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunTable1(core.DefaultTable1Config(seed))
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	fmt.Fprintf(w, "global boarding-pass increase: %+.1f%%; countries targeted: %d; pump volume: %d\n",
		res.GlobalIncreasePct, res.AttackCountries, res.PumpMessages)
	fmt.Fprintf(w, "owner SMS bill for pump traffic: $%.0f; attacker revenue share: $%.0f\n",
		res.AppCostUSD, res.FraudRevenueUSD)
	return nil
}

func runCaseA(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunCaseA(core.DefaultCaseAConfig(seed))
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	fmt.Fprintf(w, "paper reference: mean rotation 5.3h; attack ceased 2 days before departure\n")
	fmt.Fprintf(w, "measured: mean rotation %v; ceased %v before departure\n",
		res.MeanRotationInterval.Round(time.Minute),
		res.Departure.Sub(res.LastAttackHold).Round(time.Hour))
	return nil
}

func runCaseB(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunCaseB(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	return nil
}

func runCaseC(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunCaseC(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	return nil
}

func runDetection(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunDetectionComparison(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	fmt.Fprintf(w, "sessions: human=%d scraper=%d spinner=%d pumper=%d\n",
		res.HumanSessions, res.ScraperSessions, res.SpinnerSessions, res.PumperSessions)
	return nil
}

func runHoneypot(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunHoneypot(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	return nil
}

func runBiometric(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunBiometric(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	return nil
}

func runAblations(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunAblations(seed)
	if err != nil {
		return err
	}
	for _, t := range res.Tables() {
		emit(w, t, csv)
		fmt.Fprintln(w)
	}
	return nil
}

func runCarrier(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunCarrier(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	return nil
}

func runPricing(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunPricing(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	return nil
}

func runChaos(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunChaos(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	fmt.Fprintf(w, "fail-open forfeits the layer's catches while it flaps; fail-closed charges honest traffic instead\n")
	return nil
}

func runEconomics(w io.Writer, seed uint64, csv bool) error {
	res, err := core.RunEconomics(seed)
	if err != nil {
		return err
	}
	emit(w, res.Table(), csv)
	fmt.Fprintf(w, "analytic break-even CAPTCHA solve cost: $%.4f/solve (market prices are ~$0.002)\n",
		res.BreakEvenSolveCostUSD)
	return nil
}
