package main

import (
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", 1, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// The ablation study is the cheapest full experiment.
	if err := run("ablations", 1, false); err != nil {
		t.Fatalf("run(ablations): %v", err)
	}
}

func TestRunCSVOutput(t *testing.T) {
	if err := run("biometric", 1, true); err != nil {
		t.Fatalf("run(biometric, csv): %v", err)
	}
}
