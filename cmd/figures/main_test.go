package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "nonsense", 1, false, 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// The ablation study is the cheapest full experiment.
	var buf bytes.Buffer
	if err := run(&buf, "ablations", 1, false, 1, 1); err != nil {
		t.Fatalf("run(ablations): %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestRunCSVOutput(t *testing.T) {
	if err := run(io.Discard, "biometric", 1, true, 1, 1); err != nil {
		t.Fatalf("run(biometric, csv): %v", err)
	}
}

// TestReplicateSummaryMode checks the replicate path produces the summary
// header and per-metric stats rather than the single-seed table.
func TestReplicateSummaryMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "biometric", 1, false, 2, 2); err != nil {
		t.Fatalf("run(biometric, replicates=2): %v", err)
	}
	out := buf.String()
	for _, want := range []string{"2 replicates (seeds 1..2)", "Mean", "Std", "replicate wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replicate output missing %q:\n%s", want, out)
		}
	}
}

// TestRunAllParallelMatchesSerial renders a cheap replicate summary for
// every experiment with 1 worker and with 4, and requires byte-identical
// buffered output — the cmd-level half of the determinism story.
// It is the long pole of the cmd test suite (every experiment twice).
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full -exp all comparison in -short mode")
	}
	var serial, parallel bytes.Buffer
	if err := run(&serial, "all", 1, true, 1, 1); err != nil {
		t.Fatalf("serial all: %v", err)
	}
	if err := run(&parallel, "all", 1, true, 1, 4); err != nil {
		t.Fatalf("parallel all: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("parallel -exp all output differs from serial")
	}
}
