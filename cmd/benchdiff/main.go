// Command benchdiff compares two benchmark snapshots produced by `make
// bench` (go-test JSON streams) and gates the hot path: it exits
// non-zero when any benchmark matching -hot regresses more than
// -tolerance on ns/op, or at all on allocs/op. Cold benchmarks are
// reported but never fail the run — wall-time noise outside the decision
// path is expected on shared CI runners; allocation counts are exact.
//
//	benchdiff BENCH_BASELINE.json BENCH_PR7.json
//	benchdiff -hot 'GateDecide|LimiterAllow' -tolerance 15 old.json new.json
//	benchdiff -update BENCH_BASELINE.json BENCH_PR7.json
//
// With -update the comparison is skipped: CURRENT's minimum samples are
// rewritten to BASELINE as a minimal go-test JSON stream benchdiff itself
// parses — the accepted way to re-baseline after a deliberate hot-path
// change. The update refuses to write a baseline with no gated benchmarks.
//
// Each benchmark's ns/op, B/op and allocs/op are taken as the minimum
// across the snapshot's samples (-count=3 in the Makefile): the minimum
// is the least-noisy estimate of the code's cost, since interference
// only ever adds time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's best (minimum) sample.
type benchResult struct {
	NsOp     float64
	BOp      float64
	AllocsOp float64
	Samples  int
}

// testEvent is the subset of the go-test JSON stream benchdiff reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// resultLine matches a benchmark result line as `go test -bench` prints
// it: name, iteration count, ns/op, and with -benchmem B/op and
// allocs/op. The -N GOMAXPROCS suffix is stripped so snapshots from
// hosts with different core counts stay comparable.
var resultLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parseBench reads a go-test JSON stream and returns the minimum sample
// per benchmark, keyed "package/BenchmarkName". Benchmark name and
// measurements arrive in separate output events, so the text stream is
// reassembled per package before line parsing.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchdiff: unparseable event %q: %w", truncate(line, 80), err)
		}
		if ev.Action != "output" {
			continue
		}
		b := text[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			text[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: read: %w", err)
	}

	out := make(map[string]benchResult)
	for pkg, b := range text {
		for _, line := range strings.Split(b.String(), "\n") {
			m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			key := pkg + "/" + m[1]
			res := benchResult{
				NsOp:     mustFloat(m[2]),
				BOp:      optFloat(m[3]),
				AllocsOp: optFloat(m[4]),
				Samples:  1,
			}
			if prev, ok := out[key]; ok {
				res.NsOp = min(res.NsOp, prev.NsOp)
				res.BOp = min(res.BOp, prev.BOp)
				res.AllocsOp = min(res.AllocsOp, prev.AllocsOp)
				res.Samples = prev.Samples + 1
			}
			out[key] = res
		}
	}
	return out, nil
}

func mustFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func optFloat(s string) float64 {
	if s == "" {
		return 0
	}
	return mustFloat(s)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// delta is one benchmark's baseline/current pair.
type delta struct {
	Name       string
	Base, Cur  benchResult
	Hot        bool
	Regression string // empty when within budget
}

// NsPct returns the ns/op change as a percentage of the baseline.
func (d *delta) NsPct() float64 {
	if d.Base.NsOp == 0 {
		return 0
	}
	return (d.Cur.NsOp - d.Base.NsOp) / d.Base.NsOp * 100
}

// diff joins the two snapshots on benchmark key and flags hot-path
// regressions: ns/op beyond tolerance percent, or any allocs/op growth.
// A hot benchmark present in the baseline but missing from the current
// snapshot is itself a failure — a deleted benchmark must not silently
// retire its gate. New benchmarks (absent from the baseline) pass.
func diff(base, cur map[string]benchResult, hot *regexp.Regexp, tolerancePct float64) (deltas []delta, missing []string) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		isHot := hot.MatchString(k)
		c, ok := cur[k]
		if !ok {
			if isHot {
				missing = append(missing, k)
			}
			continue
		}
		d := delta{Name: k, Base: base[k], Cur: c, Hot: isHot}
		if isHot {
			switch {
			case c.AllocsOp > d.Base.AllocsOp:
				d.Regression = fmt.Sprintf("allocs/op %v -> %v", d.Base.AllocsOp, c.AllocsOp)
			case d.NsPct() > tolerancePct:
				d.Regression = fmt.Sprintf("ns/op +%.1f%% (budget %.0f%%)", d.NsPct(), tolerancePct)
			}
		}
		deltas = append(deltas, d)
	}
	return deltas, missing
}

// report renders the joined table and returns the process exit code.
func report(w io.Writer, deltas []delta, missing []string) int {
	fmt.Fprintf(w, "%-58s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "cur ns/op", "ns %", "allocs")
	failed := 0
	for i := range deltas {
		d := &deltas[i]
		mark := " "
		if d.Hot {
			mark = "*"
		}
		status := ""
		if d.Regression != "" {
			status = "  REGRESSION: " + d.Regression
			failed++
		}
		fmt.Fprintf(w, "%s %-56s %14.1f %14.1f %+7.1f%% %4.0f/%4.0f%s\n",
			mark, d.Name, d.Base.NsOp, d.Cur.NsOp, d.NsPct(),
			d.Base.AllocsOp, d.Cur.AllocsOp, status)
	}
	for _, k := range missing {
		fmt.Fprintf(w, "* %-56s MISSING from current snapshot\n", k)
		failed++
	}
	if failed > 0 {
		fmt.Fprintf(w, "\nbenchdiff: %d hot-path regression(s); '*' rows are gated\n", failed)
		return 1
	}
	fmt.Fprintf(w, "\nbenchdiff: hot path within budget ('*' rows gated)\n")
	return 0
}

// encodeSnapshot renders parsed results back into a minimal go-test JSON
// stream parseBench round-trips: one output event per benchmark carrying a
// synthesized result line with the minimum sample. Keys are emitted in
// sorted order so re-baselining is deterministic and diffs stay readable.
func encodeSnapshot(results map[string]benchResult) []byte {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		i := strings.LastIndex(k, "/Benchmark")
		pkg, name := k[:i], k[i+1:]
		res := results[k]
		line := fmt.Sprintf("%s \t       1\t%.1f ns/op\t%.0f B/op\t%.0f allocs/op\n",
			name, res.NsOp, res.BOp, res.AllocsOp)
		ev, _ := json.Marshal(testEvent{Action: "output", Package: pkg, Output: line})
		b.Write(ev)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// run is main without the process exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hotExpr := fs.String("hot", "GateDecide", "regexp selecting the gated hot-path benchmarks")
	tolerance := fs.Float64("tolerance", 10, "allowed ns/op regression for hot benchmarks, percent")
	update := fs.Bool("update", false,
		"re-baseline: write CURRENT's minimum samples to BASELINE instead of comparing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-hot regexp] [-tolerance pct] [-update] BASELINE.json CURRENT.json")
		return 2
	}
	hot, err := regexp.Compile(*hotExpr)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: bad -hot regexp:", err)
		return 2
	}
	load := func(path string) (map[string]benchResult, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseBench(f)
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(cur) == 0 {
		fmt.Fprintln(stderr, "benchdiff: current snapshot contains no benchmark results")
		return 2
	}
	if *update {
		// A re-baseline that would drop every gated benchmark is a mistake
		// (wrong -hot, wrong file): refuse it rather than silently retiring
		// the perf gate.
		hotCount := 0
		for k := range cur {
			if hot.MatchString(k) {
				hotCount++
			}
		}
		if hotCount == 0 {
			fmt.Fprintf(stderr, "benchdiff: refusing to re-baseline: no benchmark matches -hot %q\n", *hotExpr)
			return 2
		}
		if err := os.WriteFile(fs.Arg(0), encodeSnapshot(cur), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: baseline %s updated with %d benchmarks (%d gated)\n",
			fs.Arg(0), len(cur), hotCount)
		return 0
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintln(stderr, "benchdiff: baseline snapshot contains no benchmark results")
		return 2
	}
	deltas, missing := diff(base, cur, hot, *tolerance)
	return report(stdout, deltas, missing)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
