package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// snapshot assembles a go-test JSON stream the way `go test -json -bench`
// emits it: the benchmark name and its measurements arrive as separate
// output events.
func snapshot(lines ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"funabuse/internal/httpgate"}` + "\n")
	for _, l := range lines {
		fmt.Fprintf(&b, `{"Action":"output","Package":"funabuse/internal/httpgate","Output":%q}`+"\n", l)
	}
	return b.String()
}

// resultEvents splits one benchmark sample into the name event and the
// measurement event.
func resultEvents(name string, ns float64, bytesOp, allocs int) []string {
	return []string{
		name + "    \t",
		fmt.Sprintf("  100000\t%10.1f ns/op\t%8d B/op\t%8d allocs/op\n", ns, bytesOp, allocs),
	}
}

func TestParseBenchTakesMinimumAcrossSamples(t *testing.T) {
	var lines []string
	for _, ns := range []float64{300, 250, 280} {
		lines = append(lines, resultEvents("BenchmarkGateDecideInstrumented", ns, 16, 2)...)
	}
	got, err := parseBench(strings.NewReader(snapshot(lines...)))
	if err != nil {
		t.Fatal(err)
	}
	key := "funabuse/internal/httpgate/BenchmarkGateDecideInstrumented"
	res, ok := got[key]
	if !ok {
		t.Fatalf("missing %q in %v", key, got)
	}
	if res.NsOp != 250 || res.AllocsOp != 2 || res.BOp != 16 || res.Samples != 3 {
		t.Fatalf("min sample wrong: %+v", res)
	}
}

func TestParseBenchStripsGomaxprocsSuffix(t *testing.T) {
	lines := resultEvents("BenchmarkGateDecideBatch64-8", 9000, 0, 0)
	got, err := parseBench(strings.NewReader(snapshot(lines...)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["funabuse/internal/httpgate/BenchmarkGateDecideBatch64"]; !ok {
		t.Fatalf("suffix not stripped: %v", got)
	}
}

// write drops a snapshot in the test's temp dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPassesWithinBudget(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", snapshot(resultEvents("BenchmarkGateDecideInstrumented", 300, 0, 0)...))
	// 5% slower with identical allocs: inside the 10% budget.
	cur := write(t, dir, "cur.json", snapshot(resultEvents("BenchmarkGateDecideInstrumented", 315, 0, 0)...))
	var out, errBuf bytes.Buffer
	if code := run([]string{base, cur}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "within budget") {
		t.Fatalf("missing pass banner:\n%s", out.String())
	}
}

func TestRunFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", snapshot(resultEvents("BenchmarkGateDecideInstrumented", 300, 0, 0)...))
	cur := write(t, dir, "cur.json", snapshot(resultEvents("BenchmarkGateDecideInstrumented", 360, 0, 0)...))
	var out bytes.Buffer
	if code := run([]string{base, cur}, &out, &out); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: ns/op") {
		t.Fatalf("missing ns/op regression marker:\n%s", out.String())
	}
}

func TestRunFailsOnAnyAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", snapshot(resultEvents("BenchmarkGateDecideInstrumented", 300, 0, 0)...))
	// Faster but allocating: the alloc gate has no tolerance.
	cur := write(t, dir, "cur.json", snapshot(resultEvents("BenchmarkGateDecideInstrumented", 200, 16, 1)...))
	var out bytes.Buffer
	if code := run([]string{base, cur}, &out, &out); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: allocs/op") {
		t.Fatalf("missing allocs/op regression marker:\n%s", out.String())
	}
}

func TestRunIgnoresColdRegressions(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", snapshot(resultEvents("BenchmarkFig1NiPDistribution", 1000, 64, 3)...))
	// 3x slower and allocating more, but not matched by -hot.
	cur := write(t, dir, "cur.json", snapshot(resultEvents("BenchmarkFig1NiPDistribution", 3000, 128, 9)...))
	var out bytes.Buffer
	if code := run([]string{base, cur}, &out, &out); code != 0 {
		t.Fatalf("exit %d, want 0: cold benchmarks must not gate\n%s", code, out.String())
	}
}

func TestRunFailsWhenHotBenchmarkDisappears(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", snapshot(resultEvents("BenchmarkGateDecideBatch64", 9000, 0, 0)...))
	cur := write(t, dir, "cur.json", snapshot(resultEvents("BenchmarkSomethingElse", 10, 0, 0)...))
	var out bytes.Buffer
	if code := run([]string{base, cur}, &out, &out); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("missing disappeared-benchmark marker:\n%s", out.String())
	}
}

func TestDiffAgainstRealSnapshotShape(t *testing.T) {
	// Mirror the exact event split observed in committed snapshots:
	// padded name event, then a count+measurements event.
	stream := snapshot(
		"goos: linux\n",
		"BenchmarkGateDecideInstrumented\n",
		"BenchmarkGateDecideInstrumented    \t",
		" 4404364\t       270.9 ns/op\t       0 B/op\t       0 allocs/op\n",
	)
	got, err := parseBench(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	res := got["funabuse/internal/httpgate/BenchmarkGateDecideInstrumented"]
	if res.NsOp != 270.9 || res.AllocsOp != 0 {
		t.Fatalf("split-event sample misparsed: %+v", res)
	}
	deltas, missing := diff(got, got, regexp.MustCompile("GateDecide"), 10)
	if len(missing) != 0 || len(deltas) != 1 || deltas[0].Regression != "" {
		t.Fatalf("self-diff not clean: %+v missing %v", deltas, missing)
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	dir := t.TempDir()
	var lines []string
	for _, ns := range []float64{300, 250, 280} {
		lines = append(lines, resultEvents("BenchmarkGateDecideInstrumented", ns, 16, 2)...)
	}
	lines = append(lines, resultEvents("BenchmarkColdPath", 9000, 512, 40)...)
	curPath := write(t, dir, "cur.json", snapshot(lines...))
	basePath := filepath.Join(dir, "base.json")

	var out, errOut bytes.Buffer
	if code := run([]string{"-update", basePath, curPath}, &out, &errOut); code != 0 {
		t.Fatalf("update exit %d: %s", code, errOut.String())
	}
	// The rewritten baseline must round-trip through parseBench with the
	// minimum samples intact...
	f, err := os.Open(basePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := parseBench(f)
	if err != nil {
		t.Fatalf("rewritten baseline unparseable: %v", err)
	}
	res, ok := base["funabuse/internal/httpgate/BenchmarkGateDecideInstrumented"]
	if !ok || res.NsOp != 250 || res.AllocsOp != 2 || res.BOp != 16 {
		t.Fatalf("rewritten baseline wrong: %+v (ok=%v)", res, ok)
	}
	if len(base) != 2 {
		t.Fatalf("baseline holds %d benchmarks, want 2", len(base))
	}
	// ...and an immediate compare against the same current must pass.
	out.Reset()
	if code := run([]string{basePath, curPath}, &out, &errOut); code != 0 {
		t.Fatalf("fresh baseline vs itself failed: %s%s", out.String(), errOut.String())
	}
}

func TestUpdateRefusesBaselineWithoutGatedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	curPath := write(t, dir, "cur.json",
		snapshot(resultEvents("BenchmarkColdPath", 9000, 512, 40)...))
	basePath := write(t, dir, "base.json", "keep me")

	var out, errOut bytes.Buffer
	if code := run([]string{"-update", basePath, curPath}, &out, &errOut); code == 0 {
		t.Fatal("update accepted a snapshot with no gated benchmark")
	}
	if got, _ := os.ReadFile(basePath); string(got) != "keep me" {
		t.Fatalf("refused update still overwrote the baseline: %q", got)
	}
}

func TestUpdateIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	lines := append(resultEvents("BenchmarkGateDecide", 100, 0, 0),
		resultEvents("BenchmarkAnother", 200, 8, 1)...)
	curPath := write(t, dir, "cur.json", snapshot(lines...))
	read := func(name string) string {
		path := filepath.Join(dir, name)
		var out, errOut bytes.Buffer
		if code := run([]string{"-update", path, curPath}, &out, &errOut); code != 0 {
			t.Fatalf("update exit %d: %s", code, errOut.String())
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := read("a.json"), read("b.json"); a != b {
		t.Fatal("two updates from the same snapshot produced different baselines")
	}
}
