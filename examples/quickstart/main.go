// Quickstart: stand up the defended airline application, drive one day of
// legitimate traffic plus a seat-spinning bot through it, and watch the
// adaptive defender respond — all in deterministic virtual time, in well
// under a second of wall clock.
package main

import (
	"fmt"
	"log"
	"time"

	"funabuse/internal/attack"
	"funabuse/internal/core"
	"funabuse/internal/fingerprint"
	"funabuse/internal/proxy"
	"funabuse/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the environment: 150 background flights plus the target
	//    flight "FA100", an SMS gateway, residential proxies, and the
	//    application with block lists enabled.
	envCfg := core.DefaultEnvConfig(42)
	envCfg.Defence = core.DefenceConfig{Blocklists: true}
	envCfg.TargetDep = core.SimStart.Add(7 * 24 * time.Hour)
	env := core.NewEnv(envCfg)

	// 2. Legitimate traffic: booking journeys with the Fig. 1 party-size
	//    mix, arriving at a diurnal rate.
	flights := append(env.FleetIDs(envCfg), envCfg.TargetID)
	wl := workload.DefaultConfig(flights, core.SimStart.Add(2*24*time.Hour))
	pop := workload.NewPopulation(wl, env.App, env.App, nil, env.Sched, env.RNG.Derive("pop"), env.Registry)
	pop.Start()

	// 3. Let half a day pass so the defender can learn what "normal"
	//    looks like, then start it.
	if err := env.Run(12 * time.Hour); err != nil {
		return err
	}
	baseline := env.Bookings.JournalBetween(core.SimStart, env.Sched.Now())
	defender := core.NewDefender(core.DefaultDefenderConfig(), env.App, env.Sched, baseline)
	defender.Start()

	// 4. The attacker: an automated seat spinner holding six seats per
	//    reservation on FA100, re-holding each time the 30-minute hold
	//    expires, spoofing organic browser fingerprints and exiting
	//    through per-request residential proxies.
	rot := fingerprint.NewRotator(
		env.RNG.Derive("rot"),
		fingerprint.NewGenerator(env.RNG.Derive("fpgen")),
		fingerprint.WithSpoofing(),
	)
	spinner := attack.NewSeatSpinner(attack.SeatSpinnerConfig{
		ID:             "spin-1",
		Flight:         envCfg.TargetID,
		TargetNiP:      6,
		ReholdInterval: envCfg.Booking.HoldTTL,
		Departure:      envCfg.TargetDep,
		Identity:       attack.IdentityStructured,
		Parallel:       8,
	}, env.App, env.Sched, env.RNG.Derive("spinner"), rot,
		env.Proxies.NewSession("SG", proxy.RotatePerRequest))
	spinner.Start()

	// 5. Run a day and a half of virtual time.
	if err := env.Run(2 * 24 * time.Hour); err != nil {
		return err
	}

	// 6. Report.
	stats := spinner.Stats()
	fmt.Println("== quickstart: one day of attack vs adaptive defence ==")
	fmt.Printf("legitimate holds:      %d (friction: %d)\n", pop.Holds(), pop.Friction())
	fmt.Printf("attacker holds:        %d of %d attempts\n", stats.Holds, stats.Attempts)
	fmt.Printf("attacker blocked:      %d times, rotated identity %d times\n",
		stats.Blocked, len(stats.Rotations))
	if len(stats.Rotations) > 0 {
		fmt.Printf("mean rotation delay:   %v (paper: ~5.3h)\n",
			stats.MeanRotationInterval().Round(time.Minute))
	}
	fmt.Printf("defender rules:        %d installed\n", defender.RulesAdded())
	if at, ok := defender.CapApplied(); ok {
		fmt.Printf("NiP cap applied:       %v after attack start\n",
			at.Sub(core.SimStart.Add(12*time.Hour)).Round(time.Hour))
	}
	av, err := env.Bookings.AvailabilityOf(envCfg.TargetID)
	if err != nil {
		return err
	}
	fmt.Printf("target flight now:     %d held / %d sold / %d open of %d\n",
		av.Held, av.Sold, av.Available, av.Capacity)
	return nil
}
