// SMS-pumping walkthrough: replays the Airline D boarding-pass pumping
// incident (case study C) end-to-end —
//
//  1. regenerates Table I, the per-country SMS surge between the baseline
//     week and the attack week;
//  2. runs the rate-limit key ablation showing why the path-level limit
//     detected the attack late while a per-locator limit would have
//     strangled it immediately;
//  3. sweeps the economic deterrents (CAPTCHA solve tax, locator caps)
//     over the attacker's profit and loss.
package main

import (
	"fmt"
	"log"

	"funabuse/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 7

	fmt.Println("=== Table I — per-country SMS surge ===")
	t1, err := core.RunTable1(core.DefaultTable1Config(seed))
	if err != nil {
		return err
	}
	fmt.Print(t1.Table().String())
	fmt.Printf("global boarding-pass increase %+.1f%% (paper: ~25%%); %d countries (paper: 42)\n",
		t1.GlobalIncreasePct, t1.AttackCountries)
	fmt.Printf("owner paid $%.0f for pump traffic; attacker's revenue share $%.0f\n\n",
		t1.AppCostUSD, t1.FraudRevenueUSD)

	fmt.Println("=== Case C — which rate-limit key would have caught it? ===")
	cc, err := core.RunCaseC(seed)
	if err != nil {
		return err
	}
	fmt.Print(cc.Table().String())
	fmt.Println()

	fmt.Println("=== Economic deterrents — attacker P&L ===")
	econ, err := core.RunEconomics(seed)
	if err != nil {
		return err
	}
	fmt.Print(econ.Table().String())
	fmt.Printf("break-even CAPTCHA solve price: $%.4f — far above the ~$0.002 market rate,\n",
		econ.BreakEvenSolveCostUSD)
	fmt.Println("so challenges tax the attack; only volume caps starve it.")
	return nil
}
