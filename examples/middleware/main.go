// Middleware example: the fraud-prevention pipeline guarding a real
// net/http service. A toy boarding-pass endpoint is wrapped with the
// httpgate middleware — blocklists, a challenge hook, and the per-resource
// rate limit whose absence enabled the Airline D incident — and the
// example fires a miniature pumping run against the live server to show
// each layer deny in turn.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"funabuse/internal/httpgate"
	"funabuse/internal/mitigate"
	"funabuse/internal/obs"
	"funabuse/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	blocks := mitigate.NewBlockList(24 * time.Hour)
	now := time.Now()

	gate := httpgate.New(httpgate.Config{
		Blocks: blocks,
		// Per-booking-reference limit: 3 boarding-pass sends per day —
		// the control the paper's case study C shows was missing.
		ResourceKey: func(r *http.Request) string {
			return r.URL.Query().Get("pnr")
		},
		ResourceLimit:  3,
		ResourceWindow: 24 * time.Hour,
		// A simple challenge: require the fingerprint collector to have
		// run (trivial scripts skip it).
		RequireFingerprint: true,
		Clock:              simclock.Real{},
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/checkin/boardingpass/sms", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "boarding pass for %s sent\n", r.URL.Query().Get("pnr"))
	})

	srv := httptest.NewServer(gate.Wrap(mux))
	defer srv.Close()
	fmt.Println("server up at", srv.URL)
	fmt.Println()

	client := srv.Client()
	show := func(label, url string, decorate func(*http.Request)) error {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		if decorate != nil {
			decorate(req)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		deniedBy := resp.Header.Get(httpgate.ReasonHeader)
		if deniedBy == "" {
			deniedBy = "-"
		}
		fmt.Printf("%-38s -> %d  denied-by=%-20s %s", label, resp.StatusCode, deniedBy,
			string(body))
		return nil
	}
	withCollector := func(r *http.Request) {
		r.Header.Set(httpgate.FingerprintHeader, "deadbeef")
	}

	// 1. A script without the collector header: challenged away.
	if err := show("bot without collector", srv.URL+"/checkin/boardingpass/sms?pnr=ABC123", nil); err != nil {
		return err
	}

	// 2. A browser (collector ran): three sends per booking reference pass…
	for i := 1; i <= 3; i++ {
		if err := show(fmt.Sprintf("send %d for PNR ABC123", i),
			srv.URL+"/checkin/boardingpass/sms?pnr=ABC123", withCollector); err != nil {
			return err
		}
	}
	// …and the fourth trips the per-locator limit.
	if err := show("send 4 for PNR ABC123 (pump attempt)",
		srv.URL+"/checkin/boardingpass/sms?pnr=ABC123", withCollector); err != nil {
		return err
	}
	// A different booking is unaffected.
	if err := show("send 1 for PNR XYZ789",
		srv.URL+"/checkin/boardingpass/sms?pnr=XYZ789", withCollector); err != nil {
		return err
	}

	// 3. The defender pushes a fingerprint block rule; the device is out.
	blocks.Block("fp:deadbeef", now)
	if err := show("blocked device fingerprint",
		srv.URL+"/checkin/boardingpass/sms?pnr=XYZ789", withCollector); err != nil {
		return err
	}

	admitted, _ := obs.Value(gate.Collector(), httpgate.MetricAdmitted)
	denied, _ := obs.Value(gate.Collector(), httpgate.MetricDenied)
	fmt.Printf("\ngate totals: admitted=%.0f denied=%.0f\n", admitted, denied)
	return nil
}
