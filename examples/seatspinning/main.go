// Seat-spinning walkthrough: replays the paper's case studies A and B
// end-to-end and prints the three artefacts they produced —
//
//  1. the Fig. 1 Number-in-Party distribution across the average week, the
//     attack week, and the week after the NiP<=4 cap;
//  2. the case-A operational statistics (fingerprint-rotation war, cap
//     adaptation, the attack ceasing two days before departure);
//  3. the case-B passenger-name-pattern detections for automated and
//     manual spinners.
package main

import (
	"fmt"
	"log"
	"time"

	"funabuse/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 7

	fmt.Println("=== Fig. 1 — NiP distribution across three weeks ===")
	fig1, err := core.RunFig1(core.DefaultFig1Config(seed))
	if err != nil {
		return err
	}
	fmt.Print(fig1.Table().String())
	fmt.Printf("attacker converged on NiP %d after the cap (%d holds in total)\n\n",
		fig1.AttackerFinalNiP, fig1.AttackerHolds)

	fmt.Println("=== Case A — the fingerprint rotation war ===")
	caseA, err := core.RunCaseA(core.DefaultCaseAConfig(seed))
	if err != nil {
		return err
	}
	fmt.Print(caseA.Table().String())
	fmt.Printf("(paper: rotation every ~5.3 h on average; attack ceased two days out)\n\n")

	fmt.Println("=== Case B — automated vs manual spinning, caught by names ===")
	caseB, err := core.RunCaseB(seed)
	if err != nil {
		return err
	}
	fmt.Print(caseB.Table().String())
	fmt.Println("\ntop findings:")
	max := 5
	for i, f := range caseB.Findings {
		if i >= max {
			break
		}
		fmt.Printf("  %-20s %-28s reservations=%d %s\n",
			f.Pattern.String(), f.Key, f.Reservations, f.Detail)
	}
	_ = time.Second
	return nil
}
