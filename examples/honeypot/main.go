// Honeypot walkthrough: demonstrates the Section V decoy-inventory
// mitigation at the API level, then runs the full comparative experiment.
//
// The first part wires a honeypot manually so the mechanics are visible:
// a flagged client's holds land in a shadow reservation system while real
// inventory stays sellable and the attacker sees ordinary success
// responses. The second part runs the week-long comparison of blocking
// versus deception.
package main

import (
	"fmt"
	"log"
	"time"

	"funabuse/internal/app"
	"funabuse/internal/booking"
	"funabuse/internal/core"
	"funabuse/internal/fingerprint"
	"funabuse/internal/names"
	"funabuse/internal/simrand"
	"funabuse/internal/weblog"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := mechanics(); err != nil {
		return err
	}
	fmt.Println()
	return experiment()
}

// mechanics shows the decoy routing on a tiny fixture.
func mechanics() error {
	fmt.Println("=== honeypot mechanics ===")
	envCfg := core.DefaultEnvConfig(3)
	envCfg.Defence = core.DefenceConfig{Honeypot: true}
	envCfg.FleetSize = 0
	envCfg.TargetDep = core.SimStart.Add(7 * 24 * time.Hour)
	env := core.NewEnv(envCfg)

	gen := names.NewGenerator(simrand.New(9))
	fpGen := fingerprint.NewGenerator(simrand.New(10))
	ctx := func(key string) app.ClientContext {
		return app.ClientContext{
			IP: "10.1.2.3", Fingerprint: fpGen.Organic(),
			ClientKey: key, Cookie: key,
			Actor: weblog.ActorSeatSpinner, ActorID: key,
		}
	}
	party := func(n int) []names.Identity {
		out := make([]names.Identity, n)
		for i := range out {
			out[i] = gen.Realistic()
		}
		return out
	}

	// Flag the attacker for decoy routing.
	env.App.Honeypot().Redirect("attacker-1")

	// The attacker holds six seats — and receives a perfectly normal
	// response.
	hold, err := env.App.RequestHold(ctx("attacker-1"), booking.HoldRequest{
		Flight: envCfg.TargetID, Passengers: party(6), ActorID: "attacker-1",
	})
	if err != nil {
		return err
	}
	fmt.Printf("attacker hold accepted: id=%d nip=%d expires=%s\n",
		hold.ID, hold.NiP, hold.ExpiresAt.Format(time.RFC3339))

	// But real inventory never moved.
	av, err := env.Bookings.AvailabilityOf(envCfg.TargetID)
	if err != nil {
		return err
	}
	fmt.Printf("real inventory:  %d held / %d open of %d\n", av.Held, av.Available, av.Capacity)
	dv, err := env.Decoy.AvailabilityOf(envCfg.TargetID)
	if err != nil {
		return err
	}
	fmt.Printf("decoy inventory: %d held / %d open of %d\n", dv.Held, dv.Available, dv.Capacity)
	return nil
}

// experiment runs the full blocking-vs-decoy comparison.
func experiment() error {
	fmt.Println("=== one-week comparison: blocking vs deception ===")
	res, err := core.RunHoneypot(3)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().String())
	blocking, decoy := res.Arms[0], res.Arms[1]
	saved := blocking.RealSeatHours - decoy.RealSeatHours
	fmt.Printf("\ndeception saved %.0f real seat-hours and removed the attacker's reason to rotate\n", saved)
	fmt.Printf("(%d rotations under blocking, %d under deception)\n",
		blocking.Rotations, decoy.Rotations)
	return nil
}
